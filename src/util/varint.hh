/**
 * @file
 * Variable-length integer and delta-compression primitives for the
 * trace format (workload/trace_io.hh, on-disk format v3).
 *
 * The paper's thesis — value streams exhibit global *stride*
 * locality — applies just as well to our own storage: a column whose
 * consecutive elements differ by a (near-)constant stride collapses
 * to almost nothing once it is delta-encoded and the deltas are
 * run-length coded. Three column codecs exploit that, in increasing
 * order of specialisation:
 *
 *   deltaVarint  zigzag(v[i] - v[i-1]) as LEB128 varints — dense
 *                changes of small magnitude (values that wander);
 *   deltaRle     (zigzag-varint delta, varint run-length) pairs — a
 *                constant-stride column of any length becomes one
 *                pair, a loop with a periodic delta pattern becomes
 *                one pair per distinct run;
 *   byteRle      (byte, varint run-length) pairs for u8 columns
 *                (flags/opcode columns with long constant runs).
 *
 * Every decoder is a hardened parser: it never reads past the input
 * span, never writes more than the declared element count, and
 * reports malformed input (truncated varints, overlong varints, run
 * counts that disagree with the element count, trailing bytes) by
 * returning false instead of crashing. trace_io's corruption-fuzz
 * battery (tests/test_trace_v3.cc) polices this under ASan/UBSan.
 *
 * Delta arithmetic is done in uint64_t so wraparound is well-defined;
 * signed columns are reinterpreted as two's-complement lanes by the
 * caller.
 */

#ifndef GDIFF_UTIL_VARINT_HH
#define GDIFF_UTIL_VARINT_HH

#include <cstddef>
#include <cstdint>
#include <vector>

namespace gdiff {
namespace codec {

/// longest LEB128 encoding of a uint64_t
inline constexpr size_t maxVarintBytes = 10;

/** Map a signed value to an unsigned one with small absolute values
 *  staying small (zigzag: 0,-1,1,-2,2 → 0,1,2,3,4). */
inline uint64_t
zigzagEncode(int64_t v)
{
    return (static_cast<uint64_t>(v) << 1) ^
           static_cast<uint64_t>(v >> 63);
}

/** Inverse of zigzagEncode(). */
inline int64_t
zigzagDecode(uint64_t v)
{
    return static_cast<int64_t>(v >> 1) ^
           -static_cast<int64_t>(v & 1);
}

/** Append the LEB128 encoding of @p v to @p out. */
inline void
putVarint(std::vector<uint8_t> &out, uint64_t v)
{
    while (v >= 0x80) {
        out.push_back(static_cast<uint8_t>(v) | 0x80);
        v >>= 7;
    }
    out.push_back(static_cast<uint8_t>(v));
}

/**
 * Decode one LEB128 varint from [p, end).
 *
 * @return bytes consumed, or 0 when the input is truncated or the
 * encoding is overlong (more than maxVarintBytes, or bit 64+ set).
 */
inline size_t
getVarint(const uint8_t *p, const uint8_t *end, uint64_t *out)
{
    // Fast paths: deltas in stride-local streams are small, so one-
    // and two-byte encodings dominate every hot decode loop.
    if (p < end && !(p[0] & 0x80)) {
        *out = p[0];
        return 1;
    }
    if (end - p >= 2 && !(p[1] & 0x80)) {
        *out = static_cast<uint64_t>(p[0] & 0x7f) |
               static_cast<uint64_t>(p[1]) << 7;
        return 2;
    }
    uint64_t v = 0;
    unsigned shift = 0;
    for (size_t i = 0; p + i < end && i < maxVarintBytes; ++i) {
        uint8_t byte = p[i];
        if (shift == 63 && (byte & 0x7e))
            return 0; // would set bits past 63
        v |= static_cast<uint64_t>(byte & 0x7f) << shift;
        if (!(byte & 0x80)) {
            *out = v;
            return i + 1;
        }
        shift += 7;
    }
    return 0;
}

/// @name FNV-1a 64-bit (corruption digests for trace blocks/files)
/// @{
inline constexpr uint64_t fnvOffsetBasis = 14695981039346656037ull;
inline constexpr uint64_t fnvPrime = 1099511628211ull;

/** Fold @p bytes bytes into a running FNV-1a digest @p h. */
inline uint64_t
fnv1a(const void *data, size_t bytes, uint64_t h = fnvOffsetBasis)
{
    const uint8_t *p = static_cast<const uint8_t *>(data);
    for (size_t i = 0; i < bytes; ++i) {
        h ^= p[i];
        h *= fnvPrime;
    }
    return h;
}
/// @}

/// @name column codecs (element counts are fixed by the caller)
/// @{

/** Append zigzag-varint deltas of v[0..n) to @p out (v[-1] := 0). */
void encodeDeltaVarint(const uint64_t *v, uint32_t n,
                       std::vector<uint8_t> &out);

/** Decode exactly @p n elements from exactly @p bytes bytes.
 *  @return false on malformed input (nothing may be assumed about
 *  the contents of @p v after a failure). */
bool decodeDeltaVarint(const uint8_t *p, size_t bytes, uint64_t *v,
                       uint32_t n);

/** Append (zigzag-varint delta, varint run) pairs covering v[0..n). */
void encodeDeltaRle(const uint64_t *v, uint32_t n,
                    std::vector<uint8_t> &out);

/** Decode exactly @p n elements from exactly @p bytes bytes. */
bool decodeDeltaRle(const uint8_t *p, size_t bytes, uint64_t *v,
                    uint32_t n);

/** Append (byte, varint run) pairs covering v[0..n). */
void encodeByteRle(const uint8_t *v, uint32_t n,
                   std::vector<uint8_t> &out);

/** Decode exactly @p n elements from exactly @p bytes bytes. */
bool decodeByteRle(const uint8_t *p, size_t bytes, uint8_t *v,
                   uint32_t n);

/// @}

} // namespace codec
} // namespace gdiff

#endif // GDIFF_UTIL_VARINT_HH
