/**
 * @file
 * Small bit-manipulation helpers shared by the table-indexed
 * predictors and the cache model.
 */

#ifndef GDIFF_UTIL_BITS_HH
#define GDIFF_UTIL_BITS_HH

#include <cstdint>

namespace gdiff {

/** @return true if x is a power of two (and non-zero). */
constexpr bool
isPowerOfTwo(uint64_t x)
{
    return x != 0 && (x & (x - 1)) == 0;
}

/** @return floor(log2(x)); x must be non-zero. */
constexpr unsigned
floorLog2(uint64_t x)
{
    unsigned n = 0;
    while (x >>= 1)
        ++n;
    return n;
}

/** @return ceil(log2(x)); x must be non-zero. */
constexpr unsigned
ceilLog2(uint64_t x)
{
    return isPowerOfTwo(x) ? floorLog2(x) : floorLog2(x) + 1;
}

/** @return a mask with the low `bits` bits set. */
constexpr uint64_t
mask(unsigned bits)
{
    return bits >= 64 ? ~uint64_t(0) : ((uint64_t(1) << bits) - 1);
}

/**
 * Mix a 64-bit key into a well-distributed hash (SplitMix64 finisher).
 * Used to index tagless predictor tables so that nearby PCs do not
 * systematically collide.
 */
constexpr uint64_t
mix64(uint64_t z)
{
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
    return z ^ (z >> 31);
}

/**
 * Fold a 64-bit value down to `bits` bits by XOR-folding, preserving
 * entropy from every input bit. Used for context-history hashing in
 * the FCM/DFCM predictors.
 */
constexpr uint64_t
foldBits(uint64_t v, unsigned bits)
{
    if (bits == 0 || bits >= 64)
        return v;
    uint64_t folded = 0;
    while (v) {
        folded ^= v & mask(bits);
        v >>= bits;
    }
    return folded;
}

} // namespace gdiff

#endif // GDIFF_UTIL_BITS_HH
