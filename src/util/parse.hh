/**
 * @file
 * Strict numeric parsing for command-line flags.
 *
 * Every driver (bench harnesses, gdiffsim, gdiffrun) funnels numeric
 * flag values through parseU64Flag() so malformed input fails loudly
 * instead of being silently truncated — `--instructions=2m` used to
 * parse as 2 via bare strtoull; now it is a fatal() with the flag
 * name in the message.
 */

#ifndef GDIFF_UTIL_PARSE_HH
#define GDIFF_UTIL_PARSE_HH

#include <cerrno>
#include <cstdint>
#include <cstdlib>

#include "util/logging.hh"

namespace gdiff {

/**
 * Parse a non-negative decimal integer strictly, reporting failure
 * instead of terminating — the form servers use on untrusted input.
 *
 * Rejects empty strings, leading signs, trailing garbage, values that
 * overflow uint64_t, and (unless @p allow_zero) zero.
 *
 * @return true and set @p out on success.
 */
inline bool
tryParseU64(const char *text, uint64_t &out, bool allow_zero = false)
{
    if (text == nullptr || *text == '\0')
        return false;
    // strtoull accepts "+", "-" (wrapping!) and leading whitespace;
    // a value must start with a digit outright.
    if (*text < '0' || *text > '9')
        return false;
    errno = 0;
    char *end = nullptr;
    unsigned long long v = std::strtoull(text, &end, 10);
    if (errno == ERANGE || end == text || *end != '\0')
        return false;
    if (v == 0 && !allow_zero)
        return false;
    out = static_cast<uint64_t>(v);
    return true;
}

/**
 * Parse a non-negative decimal integer flag value strictly.
 *
 * Rejects (via fatal()) empty strings, leading signs, trailing
 * garbage, and values that overflow uint64_t. Zero is rejected by
 * default because for most flags (--instructions, --order, --table,
 * --threads) it indicates a typo rather than an intent.
 *
 * @param flag       flag name for the error message (e.g.
 *                   "--instructions").
 * @param text       the value text after the '='.
 * @param allow_zero accept 0 as a valid value (e.g. --warmup=0).
 * @return the parsed value.
 */
inline uint64_t
parseU64Flag(const char *flag, const char *text, bool allow_zero = false)
{
    if (text == nullptr || *text == '\0')
        fatal("%s: empty numeric value", flag);
    if (*text < '0' || *text > '9')
        fatal("%s: invalid number '%s'", flag, text);
    errno = 0;
    char *end = nullptr;
    unsigned long long v = std::strtoull(text, &end, 10);
    if (errno == ERANGE)
        fatal("%s: value '%s' out of range", flag, text);
    if (end == text || *end != '\0')
        fatal("%s: invalid number '%s'", flag, text);
    if (v == 0 && !allow_zero)
        fatal("%s: value must be non-zero", flag);
    return static_cast<uint64_t>(v);
}

} // namespace gdiff

#endif // GDIFF_UTIL_PARSE_HH
