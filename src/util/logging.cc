#include "logging.hh"

#include <cstdio>
#include <cstdlib>
#include <vector>

namespace gdiff {

namespace {

bool quiet_logging = false;

void
printTagged(const char *tag, const char *fmt, std::va_list ap)
{
    std::string msg = vformatString(fmt, ap);
    std::fprintf(stderr, "%s: %s\n", tag, msg.c_str());
}

} // anonymous namespace

std::string
vformatString(const char *fmt, std::va_list ap)
{
    std::va_list ap_copy;
    va_copy(ap_copy, ap);
    int n = std::vsnprintf(nullptr, 0, fmt, ap_copy);
    va_end(ap_copy);
    if (n < 0)
        return std::string(fmt);
    std::vector<char> buf(static_cast<size_t>(n) + 1);
    std::vsnprintf(buf.data(), buf.size(), fmt, ap);
    return std::string(buf.data(), static_cast<size_t>(n));
}

std::string
formatString(const char *fmt, ...)
{
    std::va_list ap;
    va_start(ap, fmt);
    std::string s = vformatString(fmt, ap);
    va_end(ap);
    return s;
}

void
panic(const char *fmt, ...)
{
    std::va_list ap;
    va_start(ap, fmt);
    printTagged("panic", fmt, ap);
    va_end(ap);
    std::abort();
}

void
fatal(const char *fmt, ...)
{
    std::va_list ap;
    va_start(ap, fmt);
    printTagged("fatal", fmt, ap);
    va_end(ap);
    std::exit(1);
}

void
warn(const char *fmt, ...)
{
    if (quiet_logging)
        return;
    std::va_list ap;
    va_start(ap, fmt);
    printTagged("warn", fmt, ap);
    va_end(ap);
}

void
inform(const char *fmt, ...)
{
    if (quiet_logging)
        return;
    std::va_list ap;
    va_start(ap, fmt);
    printTagged("info", fmt, ap);
    va_end(ap);
}

void
setQuietLogging(bool quiet)
{
    quiet_logging = quiet;
}

bool
quietLogging()
{
    return quiet_logging;
}

} // namespace gdiff
