/**
 * @file
 * Saturating counter, the basic building block of confidence
 * estimators and branch predictors.
 */

#ifndef GDIFF_UTIL_SAT_COUNTER_HH
#define GDIFF_UTIL_SAT_COUNTER_HH

#include <cstdint>

#include "logging.hh"

namespace gdiff {

/**
 * An unsigned saturating counter with a configurable bit width and
 * configurable increment/decrement step sizes.
 *
 * The paper's confidence mechanism (§4) is a 3-bit counter that adds 2
 * on a correct prediction, subtracts 1 on an incorrect one, and gates
 * predictions at a threshold of 4; that instance is provided by
 * makePaperConfidenceCounter().
 */
class SatCounter
{
  public:
    /**
     * @param bits   counter width in bits (1..16).
     * @param up     amount added on increment().
     * @param down   amount subtracted on decrement().
     * @param initial initial counter value (clamped to the maximum).
     */
    explicit SatCounter(unsigned bits = 2, unsigned up = 1,
                        unsigned down = 1, unsigned initial = 0)
        : maxValue((1u << bits) - 1), upStep(up), downStep(down),
          count(initial > maxValue ? maxValue : initial)
    {
        GDIFF_ASSERT(bits >= 1 && bits <= 16, "bad counter width %u",
                     bits);
    }

    /** Add the up-step, saturating at the maximum. */
    void
    increment()
    {
        count = (count + upStep > maxValue) ? maxValue : count + upStep;
    }

    /** Subtract the down-step, saturating at zero. */
    void
    decrement()
    {
        count = (count < downStep) ? 0 : count - downStep;
    }

    /** Reset the counter to zero. */
    void reset() { count = 0; }

    /** @return the current counter value. */
    unsigned value() const { return count; }

    /** @return the saturation maximum. */
    unsigned max() const { return maxValue; }

    /** @return true if value() >= threshold. */
    bool atLeast(unsigned threshold) const { return count >= threshold; }

  private:
    unsigned maxValue;
    unsigned upStep;
    unsigned downStep;
    unsigned count;
};

/**
 * The exact confidence counter used throughout the paper's
 * experiments: 3 bits, +2 on correct, -1 on incorrect, confident at
 * counts >= 4.
 */
inline SatCounter
makePaperConfidenceCounter()
{
    return SatCounter(3, 2, 1, 0);
}

/** Confidence threshold used by the paper's experiments. */
inline constexpr unsigned paperConfidenceThreshold = 4;

} // namespace gdiff

#endif // GDIFF_UTIL_SAT_COUNTER_HH
