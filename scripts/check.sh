#!/bin/sh
# Full local check: configure, build, test, and smoke-run every bench
# at a reduced budget. Mirrors what CI would run.
set -e
cd "$(dirname "$0")/.."
cmake -B build -G Ninja
cmake --build build
ctest --test-dir build --output-on-failure
for b in build/bench/*; do
    case "$b" in
        *perf_predictors) "$b" --benchmark_min_time=0.05s ;;
        *) "$b" --instructions=200000 --warmup=40000 ;;
    esac
done
echo "all checks passed"
