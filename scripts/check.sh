#!/bin/sh
# Full local check: configure, build, test, and smoke-run every bench
# at a reduced budget. Mirrors what CI would run.
set -e
cd "$(dirname "$0")/.."
cmake -B build -G Ninja
cmake --build build
ctest --test-dir build --output-on-failure
for b in build/bench/*; do
    case "$b" in
        *perf_predictors) "$b" --benchmark_min_time=0.05s ;;
        *serve_load) ;; # has its own dedicated step below
        *) "$b" --instructions=200000 --warmup=40000 ;;
    esac
done
# Cached replay must beat single-record regeneration by >= 3x, or the
# trace cache has lost its reason to exist.
./build/bench/trace_replay_throughput \
    --instructions=500000 --warmup=0 --require-speedup=3
# Trace format v3 gates: stride-dominant kernels must compress >= 4x
# over raw v2, and decoding the compressed format must not fall
# behind the raw v2 read path on those same kernels.
./build/bench/trace_compress --instructions=500000 \
    --require-ratio=4 --require-decode=1.0 \
    --json=build/BENCH_trace_v3.json
# Persistent trace cache: a second process sweeping over the same
# cache dir must regenerate nothing (serve every trace from disk)
# and produce bit-identical results.
rm -rf build/check_trace_cache build/warm1.jsonl build/warm2.jsonl
./build/examples/gdiffrun \
    --grid 'workload=mcf,gzip;predictor=stride,gdiff' \
    --threads=4 --instructions=100000 --warmup=20000 \
    --deterministic --no-table --out build/warm1.jsonl \
    --trace-cache-dir build/check_trace_cache
./build/examples/gdiffrun \
    --grid 'workload=mcf,gzip;predictor=stride,gdiff' \
    --threads=4 --instructions=100000 --warmup=20000 \
    --deterministic --no-table --out build/warm2.jsonl \
    --trace-cache-dir build/check_trace_cache 2> build/warm2.log
grep -q 'trace cache: 0 generated' build/warm2.log || {
    echo "trace cache: warm restart regenerated traces"
    cat build/warm2.log; exit 1; }
sort build/warm1.jsonl > build/warm1.sorted
sort build/warm2.jsonl > build/warm2.sorted
cmp build/warm1.sorted build/warm2.sorted || {
    echo "trace cache: disk-replayed sweep differs from cold run"
    exit 1; }
# Batch-vs-scalar prediction gate: the fused batch protocol must hold
# >= 2x records/sec on the gated families (stride, fcm, gdiff), with
# per-trial checksum identity between the two paths.
./build/bench/perf_predictors --require-batch-speedup=2 \
    --json=build/BENCH_batch_predictors.json
# Batch identity fuzz: scalar-vs-batch differ over every batched
# family, under both kernel sets (forced-scalar first).
GDIFF_SIMD=scalar ./build/examples/gdifffuzz --cases=1500 --seed=5 \
    --batch --no-pipeline
./build/examples/gdifffuzz --cases=1500 --seed=5 --batch --no-pipeline
# The golden-number suite pins Table 2 / Fig. 19 against
# tests/golden/; any model drift fails here with a value diff
# (regenerate deliberately with: test_paper_golden --update-golden).
./build/tests/test_paper_golden
# Observability must stay near-free: enabled collection within 3% of
# disabled on the instrumented profile loop...
./build/bench/obs_overhead \
    --instructions=400000 --warmup=40000 --require-overhead=3
# ...and a parallel sweep's Chrome trace must validate structurally.
./build/examples/gdiffrun \
    --grid 'workload=mcf,parser;predictor=stride,gdiff' \
    --threads=4 --instructions=100000 --warmup=20000 \
    --no-table --trace-out=build/obs_trace.json
./build/examples/tracecheck build/obs_trace.json --min-spans=4
# Smoke sweep through the parallel runner: thread pool, structured
# sinks, and manifest resume (the rerun must skip every job).
rm -f build/smoke.jsonl build/smoke.csv build/smoke.manifest
./build/examples/gdiffrun \
    --grid 'workload=mcf,parser,gzip;predictor=stride,dfcm,gdiff;order=4,8' \
    --threads=4 --instructions=100000 --warmup=20000 \
    --out build/smoke.jsonl --csv build/smoke.csv \
    --manifest build/smoke.manifest
[ "$(wc -l < build/smoke.jsonl)" -eq 18 ] || {
    echo "smoke sweep: expected 18 jsonl lines"; exit 1; }
./build/examples/gdiffrun \
    --grid 'workload=mcf,parser,gzip;predictor=stride,dfcm,gdiff;order=4,8' \
    --threads=4 --instructions=100000 --warmup=20000 \
    --out build/smoke.jsonl --manifest build/smoke.manifest \
    --no-table 2>&1 | grep -q 'ran 0 jobs (18 resumed/skipped)' || {
    echo "smoke sweep: resume did not skip completed jobs"; exit 1; }
# Differential fuzz smoke: oracles vs production predictors, pipeline
# invariants, and the mutation-sanity self-test.
./build/examples/gdifffuzz --cases=1000 --seed=1
rm -rf build/fuzz-repros && mkdir -p build/fuzz-repros
./build/examples/gdifffuzz --cases=1000 --seed=1 --mutate \
    --out-dir=build/fuzz-repros --no-pipeline
# Serving smoke: a daemon-fed sweep must be bit-identical to the same
# grid run in-process, and SIGTERM must drain cleanly (exit 0).
SOCK=build/check_gdiffd.sock
rm -f "$SOCK" build/check_daemon.jsonl build/check_local.jsonl
./build/examples/gdiffd --socket "$SOCK" --workers 4 &
DAEMON=$!
for _ in $(seq 1 100); do
    [ -S "$SOCK" ] && break
    sleep 0.1
done
./build/examples/gdiffctl --socket "$SOCK" ping
./build/examples/gdiffctl --socket "$SOCK" submit \
    --grid 'workload=mcf,parser;predictor=stride,dfcm,gdiff' \
    --instructions=100000 --warmup=20000 \
    --deterministic --no-table --out build/check_daemon.jsonl
./build/examples/gdiffrun \
    --grid 'workload=mcf,parser;predictor=stride,dfcm,gdiff' \
    --threads=4 --instructions=100000 --warmup=20000 \
    --deterministic --no-table --out build/check_local.jsonl
sort build/check_daemon.jsonl > build/check_daemon.sorted
sort build/check_local.jsonl > build/check_local.sorted
cmp build/check_daemon.sorted build/check_local.sorted || {
    echo "serving smoke: daemon results differ from in-process run"
    kill "$DAEMON" 2>/dev/null; exit 1; }
kill -TERM "$DAEMON"
wait "$DAEMON" || { echo "serving smoke: daemon drain failed"; exit 1; }
# Serving load: concurrent clients, shared-cache warm wave, latency
# percentiles from the obs histograms.
./build/bench/serve_load --clients=4 --instructions=200000 \
    --warmup=20000 --json=build/BENCH_serve.json
# Blind-spot mining smoke: both documented default pairs must find,
# shrink, and cluster at least one disagreement, and the full report
# (table, digests, JSONL, artifacts) must be bit-identical across a
# rerun and across thread counts.
rm -rf build/mine-artifacts && mkdir -p build/mine-artifacts
./build/examples/gdiffmine --records=1024 --rounds=6 --restarts=4 \
    --seed=1 --threads=1 --jsonl=build/mine1.jsonl \
    --artifacts=build/mine-artifacts > build/mine1.txt
./build/examples/gdiffmine --records=1024 --rounds=6 --restarts=4 \
    --seed=1 --threads=4 --jsonl=build/mine2.jsonl > build/mine2.txt
grep 'report digest:' build/mine1.txt > build/mine1.digests
grep 'report digest:' build/mine2.txt > build/mine2.digests
cmp build/mine1.digests build/mine2.digests || {
    echo "gdiffmine: report digests differ across thread counts"
    diff build/mine1.digests build/mine2.digests; exit 1; }
cmp build/mine1.jsonl build/mine2.jsonl || {
    echo "gdiffmine: cluster JSONL differs across thread counts"
    exit 1; }
ls build/mine-artifacts/*.gdtr > /dev/null || {
    echo "gdiffmine: no replayable cluster artifacts written"
    exit 1; }
# Metric-surface snapshot gate: freeze a sweep, self-diff (must be
# empty, exit 0), then inject a 1e-6 ipc perturbation and require the
# differ to report exactly that metric (exit 1).
./build/examples/gdiffrun \
    --grid 'workload=mcf,parser;scheme=baseline,hgvq' \
    --threads=4 --instructions=100000 --warmup=20000 \
    --deterministic --no-table --snapshot=build/surface.snap
./build/examples/gdiffcmp build/surface.snap build/surface.snap || {
    echo "gdiffcmp: self-diff reported differences"; exit 1; }
./build/examples/gdiffcmp --perturb=ipc=1e-6 \
    build/surface.snap build/surface_perturbed.snap
if ./build/examples/gdiffcmp build/surface.snap \
    build/surface_perturbed.snap > build/snapdiff.txt; then
    echo "gdiffcmp: missed an injected 1e-6 ipc perturbation"
    exit 1
fi
grep -q '! metric ipc' build/snapdiff.txt || {
    echo "gdiffcmp: perturbation diff did not name ipc"
    cat build/snapdiff.txt; exit 1; }
# Sampled-simulation gate: on both kernels the stratified sampler
# must cut wall clock >= 10x against a full run of the same spec,
# and the full run's IPC must land inside the (1.5x-widened) sampled
# confidence interval — speed that buys a wrong answer fails here.
./build/bench/sampled_vs_full --instructions=8000000 \
    --warmup=400000 --budget=40960 --sample-threads=4 \
    --require-speedup=10 --require-ci \
    --json=build/BENCH_sampled.json
echo "all checks passed"
