/**
 * @file
 * Global-value-queue tests: delay-shifted windows (paper §3.1) and
 * the hybrid GVQ's slot/commit semantics (paper §5).
 */

#include <gtest/gtest.h>

#include "core/gvq.hh"

namespace gdiff {
namespace core {
namespace {

TEST(Gvq, WindowIsMostRecentFirst)
{
    GlobalValueQueue q(4);
    q.push(10);
    q.push(20);
    q.push(30);
    ValueWindow w = q.visibleWindow();
    ASSERT_EQ(w.count, 3u);
    EXPECT_EQ(w.values[0], 30);
    EXPECT_EQ(w.values[1], 20);
    EXPECT_EQ(w.values[2], 10);
}

TEST(Gvq, WindowCapsAtOrder)
{
    GlobalValueQueue q(2);
    for (int i = 1; i <= 5; ++i)
        q.push(i);
    ValueWindow w = q.visibleWindow();
    ASSERT_EQ(w.count, 2u);
    EXPECT_EQ(w.values[0], 5);
    EXPECT_EQ(w.values[1], 4);
}

TEST(Gvq, DelayHidesNewestValues)
{
    // order 3, delay 2: the window shows ages 3,4,5.
    GlobalValueQueue q(3, 2);
    for (int i = 1; i <= 6; ++i)
        q.push(i);
    ValueWindow w = q.visibleWindow();
    ASSERT_EQ(w.count, 3u);
    EXPECT_EQ(w.values[0], 4); // age 3
    EXPECT_EQ(w.values[1], 3);
    EXPECT_EQ(w.values[2], 2);
}

TEST(Gvq, DelayedWindowEmptyUntilEnoughHistory)
{
    GlobalValueQueue q(3, 2);
    q.push(1);
    q.push(2);
    EXPECT_EQ(q.visibleWindow().count, 0u);
    q.push(3);
    ValueWindow w = q.visibleWindow();
    ASSERT_EQ(w.count, 1u);
    EXPECT_EQ(w.values[0], 1);
}

TEST(Gvq, ClearForgets)
{
    GlobalValueQueue q(2);
    q.push(1);
    q.clear();
    EXPECT_EQ(q.visibleWindow().count, 0u);
}

TEST(GvqDeath, OrderOutOfRange)
{
    EXPECT_DEATH(GlobalValueQueue q(0), "order");
    EXPECT_DEATH(GlobalValueQueue q(maxOrder + 1), "order");
}

// --------------------------------------------------------------- HGVQ

TEST(HybridGvq, SlotIdsAreSequential)
{
    HybridGvq h(4, 16);
    EXPECT_EQ(h.pushSpeculative(100), 0u);
    EXPECT_EQ(h.pushSpeculative(200), 1u);
    EXPECT_EQ(h.pushSpeculative(300), 2u);
}

TEST(HybridGvq, DispatchWindowSeesSpeculativeValues)
{
    HybridGvq h(4, 16);
    h.pushSpeculative(100);
    h.pushSpeculative(200);
    ValueWindow w = h.windowAtDispatch();
    ASSERT_EQ(w.count, 2u);
    EXPECT_EQ(w.values[0], 200);
    EXPECT_EQ(w.values[1], 100);
}

TEST(HybridGvq, CommitOverwritesSlot)
{
    HybridGvq h(4, 16);
    uint64_t s0 = h.pushSpeculative(100);
    h.pushSpeculative(200);
    h.commitSlot(s0, 111); // real value arrives at writeback
    ValueWindow w = h.windowAtDispatch();
    EXPECT_EQ(w.values[1], 111);
    EXPECT_EQ(w.values[0], 200); // untouched speculative slot
}

TEST(HybridGvq, WindowBeforeSlotAnchorsInDispatchOrder)
{
    HybridGvq h(2, 16);
    h.pushSpeculative(10); // slot 0
    h.pushSpeculative(20); // slot 1
    uint64_t s2 = h.pushSpeculative(30); // slot 2
    h.pushSpeculative(40); // slot 3 (dispatched later)

    // The training window of slot 2 must see slots 1 and 0 — never
    // slot 3, which dispatched after it.
    ValueWindow w = h.windowBeforeSlot(s2);
    ASSERT_EQ(w.count, 2u);
    EXPECT_EQ(w.values[0], 20);
    EXPECT_EQ(w.values[1], 10);
}

TEST(HybridGvq, WindowBeforeSlotSeesCommittedValues)
{
    HybridGvq h(2, 16);
    uint64_t s0 = h.pushSpeculative(10);
    uint64_t s1 = h.pushSpeculative(20);
    h.commitSlot(s0, 11); // slot 0's real result arrives first
    ValueWindow w = h.windowBeforeSlot(s1);
    ASSERT_EQ(w.count, 1u);
    EXPECT_EQ(w.values[0], 11);
}

TEST(HybridGvq, EvictedSlotsDropFromWindows)
{
    HybridGvq h(4, 4); // tiny ring
    for (int i = 0; i < 8; ++i)
        h.pushSpeculative(i * 10);
    // Slots 0..3 have been evicted; a window anchored at slot 5 can
    // only reach slots 4 (value 40): slots 3,2 are gone.
    ValueWindow w = h.windowBeforeSlot(5);
    ASSERT_EQ(w.count, 1u);
    EXPECT_EQ(w.values[0], 40);
}

TEST(HybridGvq, CommitOfEvictedSlotIsSilentlyDropped)
{
    HybridGvq h(2, 2);
    uint64_t s0 = h.pushSpeculative(1);
    h.pushSpeculative(2);
    h.pushSpeculative(3); // evicts slot 0
    h.commitSlot(s0, 99); // must not crash or corrupt
    ValueWindow w = h.windowAtDispatch();
    EXPECT_EQ(w.values[0], 3);
    EXPECT_EQ(w.values[1], 2);
}

TEST(HybridGvqDeath, CommitOfFutureSlot)
{
    HybridGvq h(2, 8);
    h.pushSpeculative(1);
    EXPECT_DEATH(h.commitSlot(5, 1), "future");
}

} // namespace
} // namespace core
} // namespace gdiff
