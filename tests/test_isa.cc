/**
 * @file
 * Unit tests for the ISA layer: opcode classification, instruction
 * helpers, the program builder, and label resolution.
 */

#include <gtest/gtest.h>

#include "isa/program_builder.hh"

namespace gdiff {
namespace isa {
namespace {

using namespace reg;

TEST(Opcode, Classification)
{
    EXPECT_TRUE(isLoad(Opcode::Load));
    EXPECT_FALSE(isLoad(Opcode::Store));
    EXPECT_TRUE(isStore(Opcode::Store));
    EXPECT_TRUE(isMemory(Opcode::Load));
    EXPECT_TRUE(isMemory(Opcode::Store));
    EXPECT_FALSE(isMemory(Opcode::Add));

    EXPECT_TRUE(isCondBranch(Opcode::Beq));
    EXPECT_TRUE(isCondBranch(Opcode::Bge));
    EXPECT_FALSE(isCondBranch(Opcode::Jump));

    EXPECT_TRUE(isControl(Opcode::Jump));
    EXPECT_TRUE(isControl(Opcode::Jal));
    EXPECT_TRUE(isControl(Opcode::Jr));
    EXPECT_TRUE(isControl(Opcode::Jalr));
    EXPECT_FALSE(isControl(Opcode::Add));

    EXPECT_TRUE(isAlu(Opcode::Add));
    EXPECT_TRUE(isAlu(Opcode::Li));
    EXPECT_FALSE(isAlu(Opcode::Load));

    EXPECT_TRUE(isAluImmediate(Opcode::Addi));
    EXPECT_FALSE(isAluImmediate(Opcode::Add));

    EXPECT_TRUE(writesRegister(Opcode::Load));
    EXPECT_TRUE(writesRegister(Opcode::Jal));
    EXPECT_TRUE(writesRegister(Opcode::Jalr));
    EXPECT_FALSE(writesRegister(Opcode::Store));
    EXPECT_FALSE(writesRegister(Opcode::Beq));
}

TEST(Instruction, ProducesValue)
{
    Instruction add;
    add.op = Opcode::Add;
    add.rd = t0;
    EXPECT_TRUE(add.producesValue());

    // Writes to the zero register are not predictable values.
    add.rd = zero;
    EXPECT_FALSE(add.producesValue());

    Instruction ld;
    ld.op = Opcode::Load;
    ld.rd = t1;
    EXPECT_TRUE(ld.producesValue());

    // Jal writes a register but is excluded per the paper's
    // "value producing integer operations or loads".
    Instruction jal;
    jal.op = Opcode::Jal;
    jal.rd = ra;
    EXPECT_FALSE(jal.producesValue());

    Instruction st;
    st.op = Opcode::Store;
    EXPECT_FALSE(st.producesValue());
}

TEST(Instruction, SourceRegisterUse)
{
    Instruction li;
    li.op = Opcode::Li;
    EXPECT_FALSE(li.readsRs1());
    EXPECT_FALSE(li.readsRs2());

    Instruction add;
    add.op = Opcode::Add;
    EXPECT_TRUE(add.readsRs1());
    EXPECT_TRUE(add.readsRs2());

    Instruction addi;
    addi.op = Opcode::Addi;
    EXPECT_TRUE(addi.readsRs1());
    EXPECT_FALSE(addi.readsRs2());

    Instruction st;
    st.op = Opcode::Store;
    EXPECT_TRUE(st.readsRs1());
    EXPECT_TRUE(st.readsRs2());

    Instruction beq;
    beq.op = Opcode::Beq;
    EXPECT_TRUE(beq.readsRs1());
    EXPECT_TRUE(beq.readsRs2());

    Instruction jr;
    jr.op = Opcode::Jr;
    EXPECT_TRUE(jr.readsRs1());
    EXPECT_FALSE(jr.readsRs2());
}

TEST(Instruction, PcIndexMapping)
{
    EXPECT_EQ(indexToPc(0), textBase);
    EXPECT_EQ(indexToPc(10), textBase + 40);
    EXPECT_EQ(pcToIndex(indexToPc(1234)), 1234u);
}

TEST(ProgramBuilder, ForwardAndBackwardLabels)
{
    ProgramBuilder b("labels");
    Label fwd = b.newLabel();
    Label back = b.newLabel();

    b.bind(back);            // #0
    b.addi(t0, t0, 1);       // #0
    b.beq(t0, t1, fwd);      // #1 -> forward to #3
    b.jump(back);            // #2 -> backward to #0
    b.bind(fwd);
    b.halt();                // #3

    Program p = b.build();
    ASSERT_EQ(p.size(), 4u);
    EXPECT_EQ(p.at(1).target, 3u);
    EXPECT_EQ(p.at(2).target, 0u);
}

TEST(ProgramBuilder, HereTracksPosition)
{
    ProgramBuilder b("here");
    EXPECT_EQ(b.here(), 0u);
    b.nop();
    EXPECT_EQ(b.here(), 1u);
    b.addi(t0, t0, 1);
    EXPECT_EQ(b.here(), 2u);
    b.halt();
    b.build();
}

TEST(ProgramBuilderDeath, UnboundLabel)
{
    ProgramBuilder b("unbound");
    Label l = b.newLabel();
    b.jump(l);
    EXPECT_DEATH(b.build(), "unbound label");
}

TEST(ProgramBuilderDeath, DoubleBind)
{
    ProgramBuilder b("double");
    Label l = b.newLabel();
    b.bind(l);
    b.nop();
    EXPECT_DEATH(b.bind(l), "bound twice");
}

TEST(ProgramBuilderDeath, DanglingBind)
{
    ProgramBuilder b("dangling");
    Label l = b.newLabel();
    b.nop();
    b.bind(l); // bound past the last instruction
    EXPECT_DEATH(b.build(), "past the last instruction");
}

TEST(Disassembly, KnownFormats)
{
    ProgramBuilder b("disasm");
    Label l = b.newLabel();
    b.bind(l);
    b.load(t0, s1, 16);
    b.store(t0, s1, -8);
    b.addi(t1, t0, 5);
    b.add(t2, t0, t1);
    b.li(t3, 99);
    b.beq(t0, t1, l);
    b.halt();
    Program p = b.build();

    EXPECT_EQ(p.at(0).toString(), "ld r8, 16(r17)");
    EXPECT_EQ(p.at(1).toString(), "sd r8, -8(r17)");
    EXPECT_EQ(p.at(2).toString(), "addi r9, r8, 5");
    EXPECT_EQ(p.at(3).toString(), "add r10, r8, r9");
    EXPECT_EQ(p.at(4).toString(), "li r11, 99");
    EXPECT_EQ(p.at(5).toString(), "beq r8, r9, #0");
    EXPECT_EQ(p.at(6).toString(), "halt");

    std::string listing = p.disassemble();
    EXPECT_NE(listing.find("ld r8, 16(r17)"), std::string::npos);
}

} // namespace
} // namespace isa
} // namespace gdiff
