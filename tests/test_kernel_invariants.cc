/**
 * @file
 * Kernel data-structure invariants: the precise relations each kernel
 * claims in its header comment, checked against the live trace. These
 * relations are what the gdiff predictor detects, so pinning them
 * guards the whole reproduction against silent kernel drift.
 */

#include <gtest/gtest.h>

#include <map>

#include "workload/kernels.hh"
#include "workload/workload.hh"

namespace gdiff {
namespace workload {
namespace {

/** Collect records at a marker PC. */
std::vector<TraceRecord>
recordsAt(const Workload &w, uint64_t pc, uint64_t budget,
          size_t max_records = 20'000)
{
    auto exec = w.makeExecutor();
    std::vector<TraceRecord> out;
    TraceRecord r;
    uint64_t executed = 0;
    while (executed < budget && out.size() < max_records &&
           exec->next(r)) {
        ++executed;
        if (r.pc == pc)
            out.push_back(r);
    }
    return out;
}

TEST(KernelInvariants, ParserSpillFillRoundTrip)
{
    // The fill load must return exactly what the len load produced
    // in the same iteration (paper Fig. 2).
    Workload w = makeWorkload("parser", 1);
    uint64_t len_pc = w.markerPc("len_load");
    uint64_t fill_pc = w.markerPc("fill_load");

    auto exec = w.makeExecutor();
    TraceRecord r;
    int64_t last_len = 0;
    bool have_len = false;
    unsigned checked = 0;
    for (uint64_t i = 0; i < 300'000 && exec->next(r); ++i) {
        if (r.pc == len_pc) {
            last_len = r.value;
            have_len = true;
        } else if (r.pc == fill_pc && have_len) {
            ASSERT_EQ(r.value, last_len);
            ++checked;
        }
    }
    EXPECT_GT(checked, 3'000u);
}

TEST(KernelInvariants, ParserLengthsNeverSettle)
{
    // The LCG mutation must keep the length stream from freezing
    // into a repeatable cycle: across two consecutive passes over the
    // 512-chunk list, a substantial share of lengths must change.
    Workload w = makeWorkload("parser", 1);
    uint64_t len_pc = w.markerPc("len_load");
    auto recs = recordsAt(w, len_pc, 2'000'000, 3 * 512);
    ASSERT_GE(recs.size(), 3u * 512);
    unsigned changed = 0;
    for (size_t i = 0; i < 512; ++i) {
        if (recs[512 + i].value != recs[2 * 512 + i].value)
            ++changed;
    }
    EXPECT_GT(changed, 150u); // ~50% mutate per pass
}

TEST(KernelInvariants, McfTailPointerAffineInArcAddress)
{
    // tail == nodeBase + j*64 while the arc sits at arcBase + j*64:
    // value - effAddr must be one global constant (the relation gdiff
    // learns at distance 1).
    Workload w = makeWorkload("mcf", 1);
    auto recs = recordsAt(w, w.markerPc("tail_load"), 400'000);
    ASSERT_GT(recs.size(), 2'000u);
    std::map<int64_t, unsigned> diffs;
    for (const auto &r : recs)
        ++diffs[r.value - static_cast<int64_t>(r.effAddr)];
    ASSERT_EQ(diffs.size(), 1u);
}

TEST(KernelInvariants, TwolfCoordinateAffineWithBoundedNoise)
{
    // a->x == x0 + cell offset (5% jitter): value - effAddr constant
    // for >= 90% of loads.
    Workload w = makeWorkload("twolf", 1);
    auto recs = recordsAt(w, w.markerPc("ax_load"), 400'000);
    ASSERT_GT(recs.size(), 2'000u);
    std::map<int64_t, unsigned> diffs;
    for (const auto &r : recs)
        ++diffs[r.value - static_cast<int64_t>(r.effAddr)];
    unsigned best = 0;
    for (const auto &[d, n] : diffs)
        best = std::max(best, n);
    EXPECT_GT(best, recs.size() * 88 / 100);
}

TEST(KernelInvariants, VortexPeerSizeAffineInPeerPointer)
{
    // peer->size loaded at peer+8: value - (effAddr - 8) constant for
    // ~95% of loads (5% size jitter).
    Workload w = makeWorkload("vortex", 1);
    auto recs = recordsAt(w, w.markerPc("peer_size_load"), 400'000);
    ASSERT_GT(recs.size(), 2'000u);
    std::map<int64_t, unsigned> diffs;
    for (const auto &r : recs)
        ++diffs[r.value - static_cast<int64_t>(r.effAddr - 8)];
    unsigned best = 0;
    for (const auto &[d, n] : diffs)
        best = std::max(best, n);
    EXPECT_GT(best, recs.size() * 90 / 100);
}

TEST(KernelInvariants, Bzip2BackReferenceReturnsOlderSymbol)
{
    // The back-reference load at s1-32 must produce the symbol the
    // first-block symbol load produced four symbols earlier.
    Workload w = makeWorkload("bzip2", 1);
    uint64_t sym_pc = w.markerPc("symbol_load");
    uint64_t back_pc = w.markerPc("backref_load");

    auto exec = w.makeExecutor();
    TraceRecord r;
    std::vector<int64_t> symbols; // block-0 symbols, one per iter
    unsigned checked = 0;
    for (uint64_t i = 0; i < 200'000 && exec->next(r); ++i) {
        if (r.pc == sym_pc)
            symbols.push_back(r.value);
        else if (r.pc == back_pc && symbols.size() >= 2) {
            // block 0's backref (s1 - 32) is block 0's symbol of the
            // previous iteration
            ASSERT_EQ(r.value, symbols[symbols.size() - 2]);
            ++checked;
        }
    }
    EXPECT_GT(checked, 1'000u);
}

TEST(KernelInvariants, McfScanIsALinkedTraversal)
{
    // Consecutive tail-load effective addresses advance by 1-3 arcs
    // (skips), wrapping at the end: the linked-scan property.
    Workload w = makeWorkload("mcf", 1);
    auto recs = recordsAt(w, w.markerPc("tail_load"), 300'000);
    ASSERT_GT(recs.size(), 1'000u);
    unsigned ok = 0;
    for (size_t i = 1; i < recs.size(); ++i) {
        int64_t step = static_cast<int64_t>(recs[i].effAddr) -
                       static_cast<int64_t>(recs[i - 1].effAddr);
        if (step == 64 || step == 128 || step == 192 || step < 0)
            ++ok;
    }
    EXPECT_EQ(ok, recs.size() - 1);
}

TEST(KernelInvariants, GapChainValuesAreWidelySpread)
{
    // gap's generational values must not collapse into a small set
    // (that would make them context-predictable).
    Workload w = makeWorkload("gap", 1);
    auto exec = w.makeExecutor();
    TraceRecord r;
    std::map<int64_t, unsigned> seen;
    unsigned muls = 0;
    for (uint64_t i = 0; i < 100'000 && exec->next(r); ++i) {
        if (r.inst.op == isa::Opcode::Mul && r.producesValue()) {
            ++seen[r.value];
            ++muls;
        }
    }
    ASSERT_GT(muls, 5'000u);
    // virtually every chain value is unique
    EXPECT_GT(seen.size() * 100, muls * 99u);
}

} // namespace
} // namespace workload
} // namespace gdiff
