/**
 * @file
 * Property-based tests: invariants that must hold across whole
 * parameter sweeps, checked with TEST_P / INSTANTIATE_TEST_SUITE_P
 * and randomised reference models.
 */

#include <gtest/gtest.h>

#include <deque>
#include <tuple>

#include "core/gdiff.hh"
#include "isa/program_builder.hh"
#include "mem/cache.hh"
#include "util/random.hh"
#include "util/ring_history.hh"
#include "workload/executor.hh"

namespace gdiff {
namespace {

// ------------------------------------------------ gdiff order property

/** Params: (gdiff order, correlation distance). */
class GdiffOrderProperty
    : public ::testing::TestWithParam<std::tuple<unsigned, unsigned>>
{
};

/**
 * Invariant: a pure global-stride correlation at distance d is
 * predicted near-perfectly iff d < order (entry d of the visible
 * window exists), and never when d >= order.
 */
TEST_P(GdiffOrderProperty, DistanceVisibilityBoundary)
{
    auto [order, distance] = GetParam();
    core::GDiffConfig cfg;
    cfg.order = order;
    cfg.tableEntries = 0;
    core::GDiffPredictor p(cfg);

    Xorshift64Star rng(order * 131 + distance);
    unsigned correct = 0, trials = 0;
    for (int i = 0; i < 60; ++i) {
        int64_t base = static_cast<int64_t>(rng.next() >> 16);
        // the correlated producer
        p.update(0x400000, base);
        // (distance - 1) uncorrelated producers in between
        for (unsigned k = 1; k < distance; ++k) {
            p.update(0x401000 + k * 4,
                     static_cast<int64_t>(rng.next() >> 16));
        }
        int64_t guess;
        if (i > 4) {
            ++trials;
            if (p.predict(0x402000, guess) && guess == base + 13)
                ++correct;
        }
        p.update(0x402000, base + 13);
    }

    if (distance - 1 < order) {
        // base sits at window index (distance - 1): predictable
        EXPECT_GE(correct, trials - 2)
            << "order=" << order << " distance=" << distance;
    } else {
        EXPECT_LE(correct, 2u)
            << "order=" << order << " distance=" << distance;
    }
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, GdiffOrderProperty,
    ::testing::Combine(::testing::Values(2u, 4u, 8u, 16u, 32u),
                       ::testing::Values(1u, 2u, 4u, 8u, 16u, 32u)),
    [](const auto &info) {
        return "order" + std::to_string(std::get<0>(info.param)) +
               "_dist" + std::to_string(std::get<1>(info.param));
    });

// ------------------------------------------------ delay window property

class GvqDelayProperty : public ::testing::TestWithParam<unsigned>
{
};

/** Invariant: the delayed window is exactly the undelayed window
 * shifted by T pushes. */
TEST_P(GvqDelayProperty, WindowIsShiftedHistory)
{
    unsigned delay = GetParam();
    core::GlobalValueQueue delayed(8, delay);
    std::deque<int64_t> reference; // newest at front

    Xorshift64Star rng(delay + 5);
    for (int i = 0; i < 100; ++i) {
        int64_t v = static_cast<int64_t>(rng.next() >> 8);
        delayed.push(v);
        reference.push_front(v);

        core::ValueWindow w = delayed.visibleWindow();
        size_t expect_count =
            reference.size() > delay
                ? std::min<size_t>(8, reference.size() - delay)
                : 0;
        ASSERT_EQ(w.count, expect_count);
        for (unsigned k = 0; k < w.count; ++k)
            EXPECT_EQ(w.values[k], reference[delay + k]);
    }
}

INSTANTIATE_TEST_SUITE_P(Sweep, GvqDelayProperty,
                         ::testing::Values(0u, 1u, 2u, 4u, 8u, 16u));

// ----------------------------------------------------- cache properties

class CacheGeometryProperty
    : public ::testing::TestWithParam<std::tuple<unsigned, unsigned>>
{
};

/**
 * Invariants for any geometry: (1) a working set exactly the cache
 * size, revisited, hits every time; (2) LRU-streaming a working set
 * twice the cache size never hits on revisits.
 */
TEST_P(CacheGeometryProperty, ResidencyBoundary)
{
    auto [size_kb, assoc] = GetParam();
    mem::CacheConfig cfg;
    cfg.sizeBytes = size_kb * 1024;
    cfg.assoc = assoc;
    cfg.lineBytes = 64;
    mem::Cache fits(cfg);
    mem::Cache thrashes(cfg);

    uint64_t lines = cfg.sizeBytes / cfg.lineBytes;
    // (1) resident working set
    for (int pass = 0; pass < 3; ++pass)
        for (uint64_t i = 0; i < lines; ++i)
            fits.access(i * 64);
    EXPECT_EQ(fits.misses(), lines);

    // (2) double-size streaming under LRU
    for (int pass = 0; pass < 3; ++pass)
        for (uint64_t i = 0; i < 2 * lines; ++i)
            thrashes.access(i * 64);
    EXPECT_EQ(thrashes.misses(), thrashes.accesses());
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, CacheGeometryProperty,
    ::testing::Combine(::testing::Values(4u, 16u, 64u),
                       ::testing::Values(1u, 2u, 4u, 8u)),
    [](const auto &info) {
        return std::to_string(std::get<0>(info.param)) + "kb_a" +
               std::to_string(std::get<1>(info.param));
    });

// ----------------------------------------- ring history reference model

TEST(RingHistoryProperty, MatchesDequeModelUnderRandomOps)
{
    Xorshift64Star rng(404);
    for (unsigned cap : {1u, 2u, 3u, 7u, 16u}) {
        RingHistory<int64_t> ring(cap);
        std::deque<int64_t> model; // newest at front
        for (int step = 0; step < 2000; ++step) {
            uint64_t op = rng.below(10);
            if (op < 6) {
                int64_t v = static_cast<int64_t>(rng.next() >> 40);
                ring.push(v);
                model.push_front(v);
                if (model.size() > cap)
                    model.pop_back();
            } else if (op < 8 && !model.empty()) {
                size_t k = static_cast<size_t>(
                    rng.below(model.size()));
                int64_t v = static_cast<int64_t>(rng.next() >> 40);
                EXPECT_TRUE(ring.replace(k, v));
                model[k] = v;
            } else {
                size_t k = static_cast<size_t>(rng.below(cap + 2));
                int64_t expect =
                    k < model.size() ? model[k] : 0;
                EXPECT_EQ(ring[k], expect);
            }
            ASSERT_EQ(ring.size(), model.size());
        }
    }
}

// ---------------------------------------- executor differential fuzzing

/**
 * Randomised differential test: straight-line ALU programs executed
 * by the Executor must match an independent reference interpreter.
 */
TEST(ExecutorProperty, RandomAluProgramsMatchReference)
{
    using namespace isa;
    Xorshift64Star rng(777);

    for (int trial = 0; trial < 50; ++trial) {
        ProgramBuilder b("fuzz");
        std::vector<Instruction> emitted;
        // seed registers 16..23 with random values via li
        std::array<int64_t, numRegs> ref{};
        for (Reg r = 16; r < 24; ++r) {
            int64_t v = static_cast<int64_t>(rng.next());
            b.li(r, v);
            ref[r] = v;
        }
        auto rnd_reg = [&]() {
            return static_cast<Reg>(8 + rng.below(16)); // r8..r23
        };
        for (int i = 0; i < 40; ++i) {
            Reg rd = rnd_reg(), rs1 = rnd_reg(), rs2 = rnd_reg();
            uint64_t a = static_cast<uint64_t>(ref[rs1]);
            uint64_t c = static_cast<uint64_t>(ref[rs2]);
            switch (rng.below(7)) {
              case 0:
                b.add(rd, rs1, rs2);
                ref[rd] = static_cast<int64_t>(a + c);
                break;
              case 1:
                b.sub(rd, rs1, rs2);
                ref[rd] = static_cast<int64_t>(a - c);
                break;
              case 2:
                b.mul(rd, rs1, rs2);
                ref[rd] = static_cast<int64_t>(a * c);
                break;
              case 3:
                b.xor_(rd, rs1, rs2);
                ref[rd] = static_cast<int64_t>(a ^ c);
                break;
              case 4:
                b.and_(rd, rs1, rs2);
                ref[rd] = static_cast<int64_t>(a & c);
                break;
              case 5:
                b.or_(rd, rs1, rs2);
                ref[rd] = static_cast<int64_t>(a | c);
                break;
              default:
                b.srl(rd, rs1, rs2);
                ref[rd] = static_cast<int64_t>(a >> (c & 63));
                break;
            }
        }
        b.halt();
        workload::Executor exec(b.build());
        workload::TraceRecord r;
        while (exec.next(r)) {
        }
        for (unsigned reg = 0; reg < numRegs; ++reg) {
            EXPECT_EQ(exec.reg(static_cast<isa::Reg>(reg)), ref[reg])
                << "trial " << trial << " register " << reg;
        }
    }
}

} // namespace
} // namespace gdiff
