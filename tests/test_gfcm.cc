/**
 * @file
 * Global-context (gFCM) predictor tests: it must capture repeating
 * global value neighbourhoods that stride-family predictors cannot,
 * and fail on stride patterns whose contexts never repeat — the
 * mirror image of gdiff, pinning down the paper's §2 taxonomy.
 */

#include <gtest/gtest.h>

#include "core/gdiff.hh"
#include "predictors/gfcm.hh"

namespace gdiff {
namespace predictors {
namespace {

constexpr uint64_t pcA = 0x400000;
constexpr uint64_t pcB = 0x400010;

TEST(GFcm, LearnsRepeatingGlobalNeighbourhoods)
{
    // A periodic global pattern with NO additive structure: pairs
    // (a, b) cycle through 4 arbitrary combinations. gdiff fails
    // (differences never repeat at a fixed distance with a constant),
    // gFCM succeeds (contexts repeat exactly).
    const int64_t as[4] = {901, -7, 5555, 123};
    const int64_t bs[4] = {14, 92653, -88, 4};

    GFcmPredictor gfcm;
    core::GDiffConfig gcfg;
    gcfg.order = 8;
    gcfg.tableEntries = 0;
    core::GDiffPredictor gd(gcfg);

    unsigned gfcm_ok = 0, gd_ok = 0, trials = 0;
    for (int i = 0; i < 100; ++i) {
        int64_t a = as[i % 4];
        int64_t b = bs[i % 4];
        gfcm.update(pcA, a);
        gd.update(pcA, a);
        int64_t guess;
        if (i > 10) {
            ++trials;
            if (gfcm.predict(pcB, guess) && guess == b)
                ++gfcm_ok;
            if (gd.predict(pcB, guess) && guess == b)
                ++gd_ok;
        }
        gfcm.update(pcB, b);
        gd.update(pcB, b);
    }
    EXPECT_GT(gfcm_ok, trials * 9 / 10);
    // gdiff can catch the cyclic distance-8 self-correlation here
    // (period 4 x 2 producers), so only require gFCM to be at least
    // as good, and strictly better than chance-level for this form.
    EXPECT_GE(gfcm_ok, gd_ok);
}

TEST(GFcm, FailsOnNonRepeatingStrideContexts)
{
    // A pure stride stream never repeats a value neighbourhood, so
    // the context predictor stays near zero while gdiff is perfect —
    // the other half of the taxonomy.
    GFcmPredictor gfcm;
    unsigned ok = 0, trials = 0;
    for (int i = 0; i < 100; ++i) {
        int64_t guess;
        if (i > 4) {
            ++trials;
            if (gfcm.predict(pcA, guess) && guess == 1000 + 64 * i)
                ++ok;
        }
        gfcm.update(pcA, 1000 + 64 * i);
    }
    EXPECT_LE(ok, 2u);
}

TEST(GFcm, NoPredictionBeforeContextSeen)
{
    GFcmPredictor p;
    int64_t guess;
    EXPECT_FALSE(p.predict(pcA, guess));
}

TEST(GFcmDeath, BadConfig)
{
    GFcmConfig c;
    c.tableEntries = 1000;
    EXPECT_DEATH(GFcmPredictor p(c), "power of two");
    GFcmConfig c2;
    c2.order = 9;
    EXPECT_DEATH(GFcmPredictor p2(c2), "order");
}

} // namespace
} // namespace predictors
} // namespace gdiff
