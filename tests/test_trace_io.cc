/**
 * @file
 * Trace-file round-trip tests: records survive write/read unchanged,
 * replayed traces drive the same predictor results as live execution,
 * and malformed files are rejected.
 */

#include <gtest/gtest.h>

#include <cstdio>
#include <memory>
#include <string>
#include <vector>

#include <unistd.h>

#include "core/gdiff.hh"
#include "sim/profile.hh"
#include "workload/trace_io.hh"
#include "workload/workload.hh"

namespace gdiff {
namespace workload {
namespace {

std::string
tempPath(const char *tag)
{
    return std::string(::testing::TempDir()) + "/gdiff_trace_" + tag +
           ".bin";
}

TEST(TraceIo, RoundTripPreservesRecords)
{
    std::string path = tempPath("roundtrip");
    Workload w = makeWorkload("parser", 1);
    auto exec = w.makeExecutor();

    std::vector<TraceRecord> original;
    {
        TraceWriter writer(path);
        TraceRecord r;
        while (original.size() < 5000 && exec->next(r)) {
            writer.append(r);
            original.push_back(r);
        }
        writer.close();
        EXPECT_EQ(writer.written(), original.size());
    }

    TraceFileSource src(path);
    EXPECT_EQ(src.totalRecords(), original.size());
    TraceRecord r;
    size_t i = 0;
    while (src.next(r)) {
        ASSERT_LT(i, original.size());
        const TraceRecord &o = original[i];
        EXPECT_EQ(r.seq, o.seq);
        EXPECT_EQ(r.pc, o.pc);
        EXPECT_EQ(r.nextPc, o.nextPc);
        EXPECT_EQ(r.value, o.value);
        EXPECT_EQ(r.effAddr, o.effAddr);
        EXPECT_EQ(r.taken, o.taken);
        EXPECT_EQ(r.inst.op, o.inst.op);
        EXPECT_EQ(r.inst.rd, o.inst.rd);
        EXPECT_EQ(r.inst.rs1, o.inst.rs1);
        EXPECT_EQ(r.inst.rs2, o.inst.rs2);
        EXPECT_EQ(r.inst.imm, o.inst.imm);
        EXPECT_EQ(r.inst.target, o.inst.target);
        ++i;
    }
    EXPECT_EQ(i, original.size());
    std::remove(path.c_str());
}

TEST(TraceIo, ReplayMatchesLiveExecution)
{
    std::string path = tempPath("replay");
    {
        Workload w = makeWorkload("mcf", 1);
        auto exec = w.makeExecutor();
        TraceWriter writer(path);
        TraceRecord r;
        for (int i = 0; i < 60'000 && exec->next(r); ++i)
            writer.append(r);
    }

    auto run = [](TraceSource &src) {
        core::GDiffConfig cfg;
        cfg.order = 8;
        cfg.tableEntries = 0;
        core::GDiffPredictor gd(cfg);
        sim::ProfileConfig pcfg;
        pcfg.maxInstructions = 50'000;
        pcfg.warmupInstructions = 5'000;
        sim::ValueProfileRunner runner(pcfg);
        runner.addPredictor(gd);
        runner.run(src);
        return runner.results()[0].accuracyAll.value();
    };

    Workload w = makeWorkload("mcf", 1);
    auto live = w.makeExecutor();
    double live_acc = run(*live);

    TraceFileSource replay(path);
    double replay_acc = run(replay);

    EXPECT_DOUBLE_EQ(live_acc, replay_acc);
    std::remove(path.c_str());
}

TEST(TraceIo, RewindReplaysFromTheTop)
{
    std::string path = tempPath("rewind");
    {
        Workload w = makeWorkload("bzip2", 1);
        auto exec = w.makeExecutor();
        TraceWriter writer(path);
        TraceRecord r;
        for (int i = 0; i < 100 && exec->next(r); ++i)
            writer.append(r);
    }
    TraceFileSource src(path);
    TraceRecord first;
    ASSERT_TRUE(src.next(first));
    TraceRecord r;
    while (src.next(r)) {
    }
    src.rewind();
    TraceRecord again;
    ASSERT_TRUE(src.next(again));
    EXPECT_EQ(again.seq, first.seq);
    EXPECT_EQ(again.pc, first.pc);
    std::remove(path.c_str());
}

TEST(TraceIoDeath, MissingFileIsFatal)
{
    EXPECT_EXIT(TraceFileSource src("/nonexistent/nope.bin"),
                ::testing::ExitedWithCode(1), "cannot open");
}

// ------------------------------------------------- version matrix
//
// Writers emit v2 or v3; readers are simulated at both eras via the
// maxVersion parameter. Every cell of the matrix must either accept
// transparently or reject with an error naming both the found and
// the supported versions.

std::string
writeSmallTrace(const char *tag, uint32_t version)
{
    std::string path = tempPath(tag);
    Workload w = makeWorkload("bzip2", 1);
    auto exec = w.makeExecutor();
    TraceWriter writer(path, version);
    TraceRecord r;
    for (int i = 0; i < 500 && exec->next(r); ++i)
        writer.append(r);
    writer.close();
    return path;
}

TEST(TraceIoVersionMatrix, V2ReaderRejectsV3FileNamingBothVersions)
{
    std::string path = writeSmallTrace("v2rdr_v3file", traceVersionV3);
    TraceFileReader reader;
    TraceIoResult res = reader.open(path, traceVersionV2);
    EXPECT_EQ(res.status, TraceIoStatus::BadVersion);
    // The error must name what was found and what would have worked.
    EXPECT_NE(res.message.find("version 3"), std::string::npos)
        << res.message;
    EXPECT_NE(res.message.find("2"), std::string::npos) << res.message;
    std::remove(path.c_str());
}

TEST(TraceIoVersionMatrix, V3ReaderAcceptsV2FileTransparently)
{
    std::string v2 = writeSmallTrace("matrix_v2", traceVersionV2);
    std::string v3 = writeSmallTrace("matrix_v3", traceVersionV3);

    auto drain = [](const std::string &path) {
        TraceFileReader reader;
        TraceIoResult res = reader.open(path);
        EXPECT_TRUE(res.ok()) << res.message;
        std::vector<TraceRecord> records;
        auto chunk = std::make_unique<TraceChunk>();
        while ((res = reader.read(*chunk)).ok())
            for (uint32_t i = 0; i < chunk->size; ++i)
                records.push_back(chunk->record(i));
        EXPECT_TRUE(res.end()) << res.message;
        return records;
    };

    auto a = drain(v2);
    auto b = drain(v3);
    ASSERT_EQ(a.size(), b.size());
    for (size_t i = 0; i < a.size(); ++i) {
        EXPECT_EQ(a[i].seq, b[i].seq);
        EXPECT_EQ(a[i].pc, b[i].pc);
        EXPECT_EQ(a[i].value, b[i].value);
        EXPECT_EQ(a[i].effAddr, b[i].effAddr);
    }
    std::remove(v2.c_str());
    std::remove(v3.c_str());
}

TEST(TraceIoVersionMatrix, EachEraReaderAcceptsItsOwnFormat)
{
    for (uint32_t ver : {traceVersionV2, traceVersionV3}) {
        std::string path = writeSmallTrace("matrix_own", ver);
        TraceFileReader reader;
        TraceIoResult res = reader.open(path, ver);
        EXPECT_TRUE(res.ok()) << "v" << ver << ": " << res.message;
        EXPECT_EQ(reader.version(), ver);
        std::remove(path.c_str());
    }
}

TEST(TraceIoDeath, WrongVersionIsFatal)
{
    std::string path = tempPath("badversion");
    {
        // A structurally valid header whose version field is from
        // the future: magic "GDTR", version 999, zero records.
        std::FILE *f = std::fopen(path.c_str(), "wb");
        ASSERT_NE(f, nullptr);
        const uint32_t magic = 0x52544447; // "GDTR"
        const uint32_t version = 999;
        const uint64_t count = 0;
        std::fwrite(&magic, sizeof(magic), 1, f);
        std::fwrite(&version, sizeof(version), 1, f);
        std::fwrite(&count, sizeof(count), 1, f);
        std::fclose(f);
    }
    EXPECT_EXIT(TraceFileSource src(path),
                ::testing::ExitedWithCode(1), "version 999");
    std::remove(path.c_str());
}

TEST(TraceIoDeath, TruncatedHeaderIsFatal)
{
    std::string path = tempPath("shortheader");
    {
        // Only half a header: valid magic, then EOF.
        std::FILE *f = std::fopen(path.c_str(), "wb");
        ASSERT_NE(f, nullptr);
        const uint32_t magic = 0x52544447;
        std::fwrite(&magic, sizeof(magic), 1, f);
        std::fclose(f);
    }
    EXPECT_EXIT(TraceFileSource src(path),
                ::testing::ExitedWithCode(1), "truncated");
    std::remove(path.c_str());
}

TEST(TraceIoDeath, BadMagicIsFatal)
{
    std::string path = tempPath("badmagic");
    {
        std::FILE *f = std::fopen(path.c_str(), "wb");
        ASSERT_NE(f, nullptr);
        const char junk[32] = "this is not a trace file";
        std::fwrite(junk, sizeof(junk), 1, f);
        std::fclose(f);
    }
    EXPECT_EXIT(TraceFileSource src(path),
                ::testing::ExitedWithCode(1), "bad magic");
    std::remove(path.c_str());
}

TEST(TraceIoDeath, TruncatedFileIsFatal)
{
    std::string path = tempPath("trunc");
    {
        TraceWriter writer(path);
        Workload w = makeWorkload("bzip2", 1);
        auto exec = w.makeExecutor();
        TraceRecord r;
        for (int i = 0; i < 10 && exec->next(r); ++i)
            writer.append(r);
        writer.close();
    }
    // Chop the last record in half.
    {
        std::FILE *f = std::fopen(path.c_str(), "rb+");
        ASSERT_NE(f, nullptr);
        std::fseek(f, 0, SEEK_END);
        long size = std::ftell(f);
        std::fclose(f);
        ASSERT_EQ(0, truncate(path.c_str(), size - 32));
    }
    TraceFileSource src(path);
    TraceRecord r;
    EXPECT_EXIT(
        {
            while (src.next(r)) {
            }
        },
        ::testing::ExitedWithCode(1), "truncated");
    std::remove(path.c_str());
}

} // namespace
} // namespace workload
} // namespace gdiff
