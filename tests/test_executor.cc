/**
 * @file
 * Functional-simulator tests: instruction semantics, trace-record
 * contents, control flow, and memory behaviour.
 */

#include <gtest/gtest.h>

#include <limits>

#include "isa/program_builder.hh"
#include "workload/executor.hh"

namespace gdiff {
namespace workload {
namespace {

using namespace isa;
using namespace isa::reg;

/** Run the program until halt (or a step cap) and return the trace. */
std::vector<TraceRecord>
runAll(Executor &e, uint64_t cap = 10000)
{
    std::vector<TraceRecord> out;
    TraceRecord r;
    while (out.size() < cap && e.next(r))
        out.push_back(r);
    return out;
}

TEST(Executor, AluArithmetic)
{
    ProgramBuilder b("alu");
    b.li(t0, 7);
    b.li(t1, 5);
    b.add(t2, t0, t1);  // 12
    b.sub(t3, t0, t1);  // 2
    b.mul(t4, t0, t1);  // 35
    b.div(t5, t0, t1);  // 1
    b.rem(t6, t0, t1);  // 2
    b.halt();
    Executor e(b.build());
    runAll(e);
    EXPECT_EQ(e.reg(t2), 12);
    EXPECT_EQ(e.reg(t3), 2);
    EXPECT_EQ(e.reg(t4), 35);
    EXPECT_EQ(e.reg(t5), 1);
    EXPECT_EQ(e.reg(t6), 2);
}

TEST(Executor, LogicalAndShifts)
{
    ProgramBuilder b("logic");
    b.li(t0, 0b1100);
    b.li(t1, 0b1010);
    b.and_(t2, t0, t1); // 0b1000
    b.or_(t3, t0, t1);  // 0b1110
    b.xor_(t4, t0, t1); // 0b0110
    b.slli(t5, t0, 2);  // 48
    b.srli(t6, t0, 2);  // 3
    b.halt();
    Executor e(b.build());
    runAll(e);
    EXPECT_EQ(e.reg(t2), 0b1000);
    EXPECT_EQ(e.reg(t3), 0b1110);
    EXPECT_EQ(e.reg(t4), 0b0110);
    EXPECT_EQ(e.reg(t5), 48);
    EXPECT_EQ(e.reg(t6), 3);
}

TEST(Executor, SraSignExtends)
{
    ProgramBuilder b("sra");
    b.li(t0, -16);
    b.li(t1, 2);
    b.sra(t2, t0, t1);  // -4
    b.srl(t3, t0, t1);  // huge positive
    b.srai(t4, t0, 3);  // -2
    b.srai(t5, t0, 0);  // -16
    b.halt();
    Executor e(b.build());
    runAll(e);
    EXPECT_EQ(e.reg(t2), -4);
    EXPECT_GT(e.reg(t3), 0);
    EXPECT_EQ(e.reg(t4), -2);
    EXPECT_EQ(e.reg(t5), -16);
}

TEST(Executor, DivRemEdgeCases)
{
    ProgramBuilder b("divedge");
    b.li(t0, 42);
    b.li(t1, 0);
    b.div(t2, t0, t1); // RISC-V: x/0 == -1
    b.rem(t3, t0, t1); // RISC-V: x%0 == x
    b.li(t4, std::numeric_limits<int64_t>::min());
    b.li(t5, -1);
    b.div(t6, t4, t5); // wraps to INT64_MIN
    b.rem(t7, t4, t5); // 0
    b.halt();
    Executor e(b.build());
    runAll(e);
    EXPECT_EQ(e.reg(t2), -1);
    EXPECT_EQ(e.reg(t3), 42);
    EXPECT_EQ(e.reg(t6), std::numeric_limits<int64_t>::min());
    EXPECT_EQ(e.reg(t7), 0);
}

TEST(Executor, SltVariants)
{
    ProgramBuilder b("slt");
    b.li(t0, -5);
    b.li(t1, 3);
    b.slt(t2, t0, t1);  // 1
    b.slt(t3, t1, t0);  // 0
    b.slti(t4, t0, 0);  // 1
    b.slti(t5, t1, 3);  // 0
    b.halt();
    Executor e(b.build());
    runAll(e);
    EXPECT_EQ(e.reg(t2), 1);
    EXPECT_EQ(e.reg(t3), 0);
    EXPECT_EQ(e.reg(t4), 1);
    EXPECT_EQ(e.reg(t5), 0);
}

TEST(Executor, ZeroRegisterIsHardwired)
{
    ProgramBuilder b("zero");
    b.li(zero, 99);
    b.addi(t0, zero, 3);
    b.halt();
    Executor e(b.build());
    auto trace = runAll(e);
    EXPECT_EQ(e.reg(zero), 0);
    EXPECT_EQ(e.reg(t0), 3);
    // The write to r0 reports value 0 (not 99).
    EXPECT_FALSE(trace[0].producesValue());
}

TEST(Executor, LoadStoreRoundTrip)
{
    ProgramBuilder b("mem");
    b.li(t0, 0x10000);
    b.li(t1, 12345);
    b.store(t1, t0, 8);
    b.load(t2, t0, 8);
    b.load(t3, t0, 16); // untouched memory reads zero
    b.halt();
    Executor e(b.build());
    auto trace = runAll(e);
    EXPECT_EQ(e.reg(t2), 12345);
    EXPECT_EQ(e.reg(t3), 0);
    // Effective addresses recorded in the trace.
    EXPECT_EQ(trace[2].effAddr, 0x10008u);
    EXPECT_TRUE(trace[2].isStore());
    EXPECT_EQ(trace[3].effAddr, 0x10008u);
    EXPECT_TRUE(trace[3].isLoad());
    EXPECT_EQ(trace[3].value, 12345);
}

TEST(Executor, MemoryImagePreload)
{
    ProgramBuilder b("img");
    b.li(t0, 0x20000);
    b.load(t1, t0, 0);
    b.halt();
    Executor e(b.build());
    e.memory().write64(0x20000, -777);
    runAll(e);
    EXPECT_EQ(e.reg(t1), -777);
}

TEST(Executor, BranchesTakenAndNot)
{
    ProgramBuilder b("br");
    Label skip = b.newLabel();
    b.li(t0, 1);
    b.li(t1, 1);
    b.beq(t0, t1, skip);   // taken
    b.li(t2, 111);         // skipped
    b.bind(skip);
    b.li(t3, 222);
    b.halt();
    Executor e(b.build());
    auto trace = runAll(e);
    EXPECT_EQ(e.reg(t2), 0);
    EXPECT_EQ(e.reg(t3), 222);
    EXPECT_TRUE(trace[2].taken);
    EXPECT_TRUE(trace[2].isCondBranch());
    EXPECT_EQ(trace[2].nextPc, trace[3].pc);
}

TEST(Executor, LoopExecutesExactCount)
{
    ProgramBuilder b("loop");
    Label top = b.newLabel();
    b.li(t0, 0);
    b.li(t1, 10);
    b.bind(top);
    b.addi(t0, t0, 1);
    b.blt(t0, t1, top);
    b.halt();
    Executor e(b.build());
    runAll(e);
    EXPECT_EQ(e.reg(t0), 10);
}

TEST(Executor, JalAndJr)
{
    ProgramBuilder b("call");
    Label func = b.newLabel();
    Label after = b.newLabel();
    b.jal(ra, func);       // #0
    b.bind(after);
    b.li(t5, 5);           // #1
    b.halt();              // #2
    b.bind(func);
    b.li(t6, 6);           // #3
    b.jr(ra);              // #4
    Executor e(b.build());
    auto trace = runAll(e);
    EXPECT_EQ(e.reg(t5), 5);
    EXPECT_EQ(e.reg(t6), 6);
    // jal recorded the correct return address.
    EXPECT_EQ(static_cast<uint64_t>(e.reg(ra)), indexToPc(1));
    EXPECT_TRUE(trace[0].taken);
}

TEST(Executor, JalrIndirectCall)
{
    ProgramBuilder b("icall");
    Label func = b.newLabel();
    b.li(t0, 0);           // patched below: needs func's pc
    b.jalr(ra, t0);        // #1
    b.li(t1, 1);           // #2
    b.halt();              // #3
    b.bind(func);
    b.li(t2, 2);           // #4
    b.jr(ra);              // #5
    Program p = b.build();

    // Recreate with the real target address now that we know it.
    ProgramBuilder b2("icall2");
    Label func2 = b2.newLabel();
    b2.li(t0, static_cast<int64_t>(indexToPc(4)));
    b2.jalr(ra, t0);
    b2.li(t1, 1);
    b2.halt();
    b2.bind(func2);
    b2.li(t2, 2);
    b2.jr(ra);
    Executor e(b2.build());
    runAll(e);
    EXPECT_EQ(e.reg(t1), 1);
    EXPECT_EQ(e.reg(t2), 2);
}

TEST(Executor, HaltStopsStream)
{
    ProgramBuilder b("halt");
    b.li(t0, 1);
    b.halt();
    b.li(t1, 9); // unreachable
    Executor e(b.build());
    auto trace = runAll(e);
    EXPECT_EQ(trace.size(), 1u);
    EXPECT_TRUE(e.halted());
    TraceRecord r;
    EXPECT_FALSE(e.next(r));
    EXPECT_EQ(e.reg(t1), 0);
}

TEST(Executor, TraceSequenceNumbers)
{
    ProgramBuilder b("seq");
    b.li(t0, 1);
    b.li(t1, 2);
    b.li(t2, 3);
    b.halt();
    Executor e(b.build());
    auto trace = runAll(e);
    ASSERT_EQ(trace.size(), 3u);
    for (uint64_t i = 0; i < trace.size(); ++i) {
        EXPECT_EQ(trace[i].seq, i);
        EXPECT_EQ(trace[i].pc, indexToPc(static_cast<uint32_t>(i)));
    }
    EXPECT_EQ(e.instructionsRetired(), 3u);
}

TEST(Memory, AlignedSparseAccess)
{
    Memory m;
    EXPECT_EQ(m.read64(0x5000), 0);
    m.write64(0x5000, 42);
    m.write64(0x5008, -1);
    EXPECT_EQ(m.read64(0x5000), 42);
    EXPECT_EQ(m.read64(0x5008), -1);
    EXPECT_GE(m.allocatedPages(), 1u);
    m.clear();
    EXPECT_EQ(m.read64(0x5000), 0);
}

TEST(MemoryDeath, UnalignedAccess)
{
    Memory m;
    EXPECT_DEATH(m.write64(0x5001, 1), "unaligned");
    EXPECT_DEATH((void)m.read64(0x5004 + 1), "unaligned");
}

} // namespace
} // namespace workload
} // namespace gdiff
