/**
 * @file
 * Seed-stability regression: the promotion of bench/ext_seed_stability
 * into an asserting ctest. The kernels synthesise their value streams
 * from a seed; a credible reproduction must not hinge on one lucky
 * stream. For every kernel, the Fig. 8 predictor accuracies across
 * five seeds must stay inside a bounded spread, and the headline
 * ordering (gdiff beats the local predictors) must hold for every
 * seed, not just the default one.
 *
 * Bounds were calibrated at this budget (60k measured instructions)
 * with ~2x headroom over the observed spreads; a failure means a
 * kernel's character now depends on its seed, which breaks every
 * averaged claim downstream.
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <map>
#include <string>
#include <vector>

#include "core/gdiff.hh"
#include "predictors/fcm.hh"
#include "predictors/stride.hh"
#include "sim/profile.hh"
#include "workload/workload.hh"

using namespace gdiff;

namespace {

constexpr uint64_t kInstructions = 60'000;
constexpr uint64_t kWarmup = 10'000;
const std::vector<uint64_t> kSeeds = {1, 2, 3, 5, 8};

struct SeedRun
{
    double stride = 0;
    double dfcm = 0;
    double gdiff = 0;
};

/** accuracies[workload][seed] for the three Fig. 8 predictors. */
const std::map<std::string, std::map<uint64_t, SeedRun>> &
accuracies()
{
    static const auto table = [] {
        std::map<std::string, std::map<uint64_t, SeedRun>> out;
        for (const auto &name : workload::specWorkloadNames()) {
            for (uint64_t seed : kSeeds) {
                workload::Workload w =
                    workload::makeWorkload(name, seed);
                auto exec = w.makeExecutor();
                predictors::StridePredictor stride(0);
                predictors::FcmConfig fcfg;
                fcfg.level1Entries = 0;
                predictors::DfcmPredictor dfcm(fcfg);
                core::GDiffConfig gcfg;
                gcfg.order = 8;
                gcfg.tableEntries = 0;
                core::GDiffPredictor gd(gcfg);

                sim::ProfileConfig pcfg;
                pcfg.maxInstructions = kInstructions;
                pcfg.warmupInstructions = kWarmup;
                sim::ValueProfileRunner runner(pcfg);
                runner.addPredictor(stride);
                runner.addPredictor(dfcm);
                runner.addPredictor(gd);
                runner.run(*exec);

                SeedRun r;
                r.stride = runner.results()[0].accuracyAll.value();
                r.dfcm = runner.results()[1].accuracyAll.value();
                r.gdiff = runner.results()[2].accuracyAll.value();
                out[name][seed] = r;
            }
        }
        return out;
    }();
    return table;
}

double
spreadOf(const std::map<uint64_t, SeedRun> &runs,
         double SeedRun::*field)
{
    double lo = 1.0, hi = 0.0;
    for (const auto &[seed, r] : runs) {
        (void)seed;
        lo = std::min(lo, r.*field);
        hi = std::max(hi, r.*field);
    }
    return hi - lo;
}

/**
 * Per-kernel max-min accuracy spread across seeds must stay bounded.
 * The synthetic kernels draw fresh streams per seed, so some wobble
 * is expected; what must not happen is a kernel changing character.
 */
TEST(SeedStability, PerKernelSpreadBounded)
{
    // Calibrated per-kernel bounds: the worst spread observed over the
    // three predictors, roughly doubled. perl (dfcm 9.0 points) and
    // gcc (stride 7.2 points) mix several value populations and move
    // the most between seeds; the table-driven kernels sit under 1.
    const std::map<std::string, double> bound = {
        {"bzip2", 0.08}, {"gap", 0.02},    {"gcc", 0.15},
        {"gzip", 0.02},  {"mcf", 0.06},    {"parser", 0.02},
        {"perl", 0.18},  {"twolf", 0.08},  {"vortex", 0.02},
        {"vpr", 0.04},
    };
    for (const auto &[name, runs] : accuracies()) {
        ASSERT_TRUE(bound.count(name))
            << "no calibrated bound for workload '" << name << "'";
        double limit = bound.at(name);
        EXPECT_LE(spreadOf(runs, &SeedRun::stride), limit)
            << name << ": stride accuracy is seed-unstable";
        EXPECT_LE(spreadOf(runs, &SeedRun::dfcm), limit)
            << name << ": dfcm accuracy is seed-unstable";
        EXPECT_LE(spreadOf(runs, &SeedRun::gdiff), limit)
            << name << ": gdiff accuracy is seed-unstable";
    }
}

/**
 * The paper's headline ordering must hold for every seed: gdiff's
 * accuracy beats both local predictors on every kernel (gap, the
 * floor case for everyone, gets the same 12-point tie allowance the
 * seed-stability bench uses).
 */
TEST(SeedStability, GdiffOrderingHoldsForEverySeed)
{
    for (const auto &[name, runs] : accuracies()) {
        double slack = name == "gap" ? 0.12 : 0.0;
        for (const auto &[seed, r] : runs) {
            EXPECT_GE(r.gdiff + slack, std::max(r.stride, r.dfcm))
                << name << " seed " << seed
                << ": gdiff lost the Fig. 8 ordering (stride "
                << r.stride << ", dfcm " << r.dfcm << ", gdiff "
                << r.gdiff << ")";
        }
    }
}

/**
 * Averaged over kernels, every seed must tell the same story within a
 * few points — this is the bench's bottom-line "spread" number, now
 * asserted.
 */
TEST(SeedStability, AverageAccuracyStableAcrossSeeds)
{
    std::map<uint64_t, double> avg;
    size_t kernels = accuracies().size();
    for (const auto &[name, runs] : accuracies()) {
        (void)name;
        for (const auto &[seed, r] : runs)
            avg[seed] += r.gdiff / static_cast<double>(kernels);
    }
    double lo = 1.0, hi = 0.0;
    for (const auto &[seed, a] : avg) {
        (void)seed;
        lo = std::min(lo, a);
        hi = std::max(hi, a);
    }
    EXPECT_LE(hi - lo, 0.05)
        << "gdiff's kernel-averaged accuracy moved " << (hi - lo)
        << " across seeds (" << lo << " .. " << hi << ")";
}

} // namespace
