/**
 * @file
 * Trace-layer tests: the chunked TraceSource API (fill() vs the
 * legacy per-record next() must yield the identical stream for every
 * built-in kernel), the shared TraceCache (exactly-once generation
 * per triple — including under concurrent acquires — LRU eviction
 * under a byte cap), the cached-vs-uncached sweep determinism
 * contract, and the run-length validation on ProfileConfig/JobSpec.
 */

#include <gtest/gtest.h>

#include <atomic>
#include <map>
#include <memory>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "runner/runner.hh"
#include "sim/profile.hh"
#include "workload/executor.hh"
#include "workload/trace_cache.hh"
#include "workload/workload.hh"

namespace gdiff {
namespace workload {
namespace {

/** Field-by-field record equality (Instruction has no operator==). */
void
expectRecordEq(const TraceRecord &a, const TraceRecord &b,
               const std::string &what)
{
    ASSERT_EQ(a.seq, b.seq) << what;
    EXPECT_EQ(a.pc, b.pc) << what << " seq=" << a.seq;
    EXPECT_EQ(a.nextPc, b.nextPc) << what << " seq=" << a.seq;
    EXPECT_EQ(a.value, b.value) << what << " seq=" << a.seq;
    EXPECT_EQ(a.effAddr, b.effAddr) << what << " seq=" << a.seq;
    EXPECT_EQ(a.taken, b.taken) << what << " seq=" << a.seq;
    EXPECT_EQ(a.inst.op, b.inst.op) << what << " seq=" << a.seq;
    EXPECT_EQ(a.inst.rd, b.inst.rd) << what << " seq=" << a.seq;
    EXPECT_EQ(a.inst.rs1, b.inst.rs1) << what << " seq=" << a.seq;
    EXPECT_EQ(a.inst.rs2, b.inst.rs2) << what << " seq=" << a.seq;
    EXPECT_EQ(a.inst.imm, b.inst.imm) << what << " seq=" << a.seq;
    EXPECT_EQ(a.inst.target, b.inst.target) << what << " seq=" << a.seq;
}

// --------------------------------------------------- chunk mechanics

TEST(TraceChunkTest, PushRecordRoundTripsAndDerivesFlags)
{
    Workload w = makeWorkload("micro.stride", 1);
    auto exec = w.makeExecutor();
    TraceChunk chunk;
    TraceRecord r;
    for (int i = 0; i < 100 && exec->next(r); ++i) {
        ASSERT_FALSE(chunk.full());
        chunk.push(r);
        uint32_t j = chunk.size - 1;
        expectRecordEq(chunk.record(j), r, "round-trip");
        EXPECT_EQ(chunk.producesValue(j), r.producesValue());
        EXPECT_EQ(chunk.isLoad(j), r.isLoad());
        EXPECT_EQ(chunk.isStore(j), r.isStore());
        EXPECT_EQ(chunk.isCondBranch(j), r.isCondBranch());
        EXPECT_EQ(chunk.isControl(j), r.isControl());
        EXPECT_EQ(chunk.taken(j), r.taken);
    }
    EXPECT_EQ(chunk.size, 100u);
}

/**
 * The core equivalence the whole refactor rests on: for every
 * built-in kernel, the chunked fill() stream is record-identical to
 * the legacy per-record next() stream. The budget spans a chunk
 * boundary so block stitching is exercised.
 */
TEST(TraceChunkTest, FillMatchesPerRecordNextForEveryKernel)
{
    constexpr uint64_t budget = TraceChunk::capacity + 1500;
    for (const auto &name : specWorkloadNames()) {
        auto chunked = makeWorkload(name, 3).makeExecutor();
        auto legacy = makeWorkload(name, 3).makeExecutor();

        auto chunk = std::make_unique<TraceChunk>();
        uint64_t seen = 0;
        while (seen < budget && chunked->fill(*chunk)) {
            for (uint32_t i = 0; i < chunk->size && seen < budget;
                 ++i, ++seen) {
                TraceRecord r;
                ASSERT_TRUE(legacy->next(r)) << name;
                expectRecordEq(chunk->record(i), r, name);
            }
        }
        EXPECT_EQ(seen, budget) << name;
    }
}

// ------------------------------------------------ materialized trace

TEST(MaterializedTraceTest, ReplayIsRecordIdenticalToRegeneration)
{
    constexpr uint64_t records = 10'000;
    auto trace = MaterializedTrace::generate("micro.pairsum", 7,
                                             records);
    ASSERT_EQ(trace->records(), records);
    EXPECT_EQ(trace->bytes(),
              trace->chunks().size() * sizeof(TraceChunk));

    CachedTraceSource replay(trace);
    auto fresh = makeWorkload("micro.pairsum", 7).makeExecutor();
    TraceRecord a, b;
    for (uint64_t i = 0; i < records; ++i) {
        ASSERT_TRUE(replay.next(a)) << "replay ended early at " << i;
        ASSERT_TRUE(fresh->next(b));
        expectRecordEq(a, b, "replay-vs-fresh");
    }
    EXPECT_FALSE(replay.next(a)) << "replay must stop at the budget";
}

TEST(MaterializedTraceTest, RewindReplaysFromTheFirstRecord)
{
    auto trace = MaterializedTrace::generate("micro.stride", 1, 5000);
    CachedTraceSource replay(trace);
    TraceRecord first, r;
    ASSERT_TRUE(replay.next(first));
    while (replay.next(r)) {
    }
    replay.rewind();
    ASSERT_TRUE(replay.next(r));
    expectRecordEq(r, first, "rewind");
}

// ------------------------------------------------------- trace cache

TEST(TraceCacheTest, SecondAcquireIsAHit)
{
    TraceCache cache;
    auto a = cache.acquire("micro.stride", 1, 6000);
    EXPECT_TRUE(a.generated);
    EXPECT_GE(a.generateSeconds, 0.0);
    auto b = cache.acquire("micro.stride", 1, 6000);
    EXPECT_FALSE(b.generated);
    EXPECT_EQ(b.generateSeconds, 0.0);

    TraceCache::Stats s = cache.snapshot();
    EXPECT_EQ(s.generations, 1u);
    EXPECT_EQ(s.hits, 1u);
    EXPECT_EQ(s.misses, 1u); // the cold acquire
    EXPECT_EQ(s.entries, 1u);
    EXPECT_GT(s.residentBytes, 0u);

    // Distinct triples (different seed / budget) are distinct entries.
    cache.acquire("micro.stride", 2, 6000);
    cache.acquire("micro.stride", 1, 7000);
    EXPECT_EQ(cache.snapshot().generations, 3u);
    // Settled cache: every miss became exactly one generation.
    EXPECT_EQ(cache.snapshot().misses, cache.snapshot().generations);
}

TEST(TraceCacheTest, ConcurrentAcquiresGenerateExactlyOnce)
{
    TraceCache cache;
    constexpr int nThreads = 8;
    std::vector<std::thread> pool;
    std::vector<std::unique_ptr<TraceSource>> sources(nThreads);
    std::atomic<int> generatedCount{0};
    for (int t = 0; t < nThreads; ++t) {
        pool.emplace_back([&, t] {
            auto acq = cache.acquire("micro.periodic", 5, 9000);
            if (acq.generated)
                ++generatedCount;
            sources[t] = std::move(acq.source);
        });
    }
    for (auto &th : pool)
        th.join();

    EXPECT_EQ(generatedCount.load(), 1);
    EXPECT_EQ(cache.snapshot().generations, 1u);
    EXPECT_EQ(cache.snapshot().hits,
              static_cast<uint64_t>(nThreads - 1));

    // Every thread got a working, independent replay cursor.
    TraceRecord ref;
    ASSERT_TRUE(sources[0]->next(ref));
    for (int t = 1; t < nThreads; ++t) {
        TraceRecord r;
        ASSERT_TRUE(sources[t]->next(r)) << "thread " << t;
        expectRecordEq(r, ref, "concurrent replay");
    }
}

TEST(TraceCacheTest, LruEvictionHonoursByteCap)
{
    // Cap = one chunk: every one-chunk trace fills the cache, so each
    // new triple evicts the previous one (never the newest).
    TraceCache::Config cfg;
    cfg.maxBytes = sizeof(TraceChunk);
    TraceCache cache(cfg);

    cache.acquire("micro.stride", 1, 1000);
    cache.acquire("micro.stride", 2, 1000);
    EXPECT_EQ(cache.snapshot().evictions, 1u);
    EXPECT_EQ(cache.snapshot().entries, 1u);
    EXPECT_LE(cache.snapshot().residentBytes, sizeof(TraceChunk));

    // Seed 1 was evicted, so asking again regenerates.
    auto again = cache.acquire("micro.stride", 1, 1000);
    EXPECT_TRUE(again.generated);
    EXPECT_EQ(cache.snapshot().generations, 3u);

    // An evicted trace still replays through live sources: the
    // shared_ptr keeps the buffer alive past eviction.
    auto held = cache.acquire("micro.stride", 3, 1000);
    cache.acquire("micro.stride", 4, 1000); // evicts seed 3's entry
    TraceRecord r;
    EXPECT_TRUE(held.source->next(r));

    cache.clear();
    EXPECT_EQ(cache.snapshot().entries, 0u);
    EXPECT_EQ(cache.snapshot().residentBytes, 0u);
}

// --------------------------------------------- sweep-level contract

/** The 24-job grid from the runner tests: 6 (workload, seed) triples. */
runner::SweepSpec
smallGrid()
{
    runner::SweepSpec spec;
    spec.mode = runner::JobMode::Profile;
    spec.workloads = {"micro.stride", "micro.periodic",
                      "micro.pairsum"};
    spec.predictors = {"stride", "gdiff"};
    spec.orders = {4, 8};
    spec.seeds = {1, 2};
    spec.defaultInstructions = 12'000;
    spec.warmup = 1'000;
    return spec;
}

/** Run smallGrid() and return {job key → metrics}. */
std::map<std::string, std::vector<std::pair<std::string, double>>>
runSweep(unsigned threads, bool useCache)
{
    runner::SweepRunner sweep(smallGrid());
    runner::CollectingSink collect;
    sweep.addSink(collect);
    runner::SweepOptions opt;
    opt.threads = threads;
    opt.useTraceCache = useCache;
    sweep.run(opt);
    std::map<std::string,
             std::vector<std::pair<std::string, double>>> out;
    for (const auto &r : collect.records())
        out[r.spec.key()] = r.result.metrics;
    return out;
}

TEST(TraceCacheSweepTest, SweepGeneratesOncePerTriple)
{
    TraceCache &cache = TraceCache::global();
    cache.clear();

    runner::SweepRunner sweep(smallGrid());
    runner::CollectingSink collect;
    sweep.addSink(collect);
    runner::SweepOptions opt;
    opt.threads = 4;
    runner::SweepSummary s = sweep.run(opt);

    // 24 jobs share 6 (workload, seed, records) triples: exactly 6
    // materializations, whatever the completion interleaving.
    EXPECT_EQ(s.ranJobs, 24u);
    EXPECT_EQ(s.generatedTraces, 6u);
    EXPECT_EQ(s.replayedJobs, 18u);
    EXPECT_EQ(cache.snapshot().generations, 6u);
    size_t replayed = 0;
    for (const auto &r : collect.records())
        replayed += r.result.traceReplayed ? 1 : 0;
    EXPECT_EQ(replayed, 18u);
    cache.clear();
}

TEST(TraceCacheSweepTest, CachedMetricsBitIdenticalToUncached)
{
    TraceCache::global().clear();
    auto uncached = runSweep(1, false);
    ASSERT_EQ(uncached.size(), 24u);
    for (unsigned threads : {1u, 4u}) {
        TraceCache::global().clear();
        auto cached = runSweep(threads, true);
        // Exact double equality, key by key: replaying the shared
        // trace must not perturb a single bit of any metric.
        EXPECT_EQ(cached, uncached) << "threads=" << threads;
    }
    TraceCache::global().clear();
}

// -------------------------------------------- run-length validation

TEST(ValidationDeath, ProfileRejectsZeroInstructions)
{
    sim::ProfileConfig cfg;
    cfg.maxInstructions = 0;
    EXPECT_EXIT(cfg.validate(), ::testing::ExitedWithCode(1),
                "run length is 0");
}

TEST(ValidationDeath, ProfileRejectsWarmupSwallowingTheBudget)
{
    sim::ProfileConfig cfg;
    cfg.maxInstructions = 1000;
    cfg.warmupInstructions = 1000;
    EXPECT_EXIT(cfg.validate(), ::testing::ExitedWithCode(1),
                "must be smaller than");
    cfg.warmupInstructions = 5000;
    EXPECT_EXIT(cfg.validate(), ::testing::ExitedWithCode(1),
                "must be smaller than");
}

TEST(ValidationDeath, JobSpecRejectsDegenerateRunLengths)
{
    runner::JobSpec zero;
    zero.instructions = 0;
    EXPECT_EXIT(zero.validate(), ::testing::ExitedWithCode(1),
                "instructions must be > 0");

    runner::JobSpec swallowed;
    swallowed.instructions = 500;
    swallowed.warmup = 500;
    EXPECT_EXIT(swallowed.validate(), ::testing::ExitedWithCode(1),
                "must be smaller than");
}

TEST(ValidationTest, SaneRunLengthsPass)
{
    sim::ProfileConfig cfg;
    cfg.maxInstructions = 1000;
    cfg.warmupInstructions = 999;
    cfg.validate(); // must not exit

    runner::JobSpec spec;
    spec.instructions = 1000;
    spec.warmup = 0;
    spec.validate(); // must not exit
}

} // namespace
} // namespace workload
} // namespace gdiff
