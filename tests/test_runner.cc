/**
 * @file
 * Sweep-runner tests: grid parsing/expansion, the thread pool, the
 * determinism contract (identical per-job metrics for 1 vs 4
 * threads, compared order-independently on the JSON-lines output),
 * resume via the manifest, and the structured sinks.
 */

#include <gtest/gtest.h>

#include <atomic>
#include <cstdio>
#include <fstream>
#include <map>
#include <set>
#include <sstream>
#include <string>
#include <vector>

#include "runner/factory.hh"
#include "runner/runner.hh"
#include "stats/table.hh"
#include "util/parse.hh"

namespace gdiff {
namespace runner {
namespace {

std::string
tempPath(const char *tag)
{
    return std::string(::testing::TempDir()) + "/gdiff_runner_" + tag;
}

/** A fast ≥24-job grid over the cheap micro kernels. */
SweepSpec
smallGrid()
{
    SweepSpec spec;
    spec.mode = JobMode::Profile;
    spec.workloads = {"micro.stride", "micro.periodic",
                      "micro.pairsum"};
    spec.predictors = {"stride", "gdiff"};
    spec.orders = {4, 8};
    spec.seeds = {1, 2};
    spec.defaultInstructions = 12'000;
    spec.warmup = 1'000;
    return spec;
}

// ------------------------------------------------------ grid parsing

TEST(SweepSpecTest, ParseGridAxes)
{
    SweepSpec s = SweepSpec::parseGrid(
        "workload=mcf,parser,gzip;predictor=stride,dfcm,gdiff;"
        "order=4,8");
    EXPECT_EQ(s.mode, JobMode::Profile);
    EXPECT_EQ(s.workloads,
              (std::vector<std::string>{"mcf", "parser", "gzip"}));
    EXPECT_EQ(s.predictors,
              (std::vector<std::string>{"stride", "dfcm", "gdiff"}));
    EXPECT_EQ(s.orders, (std::vector<unsigned>{4, 8}));
    EXPECT_EQ(s.jobCount(), 3u * 3u * 2u);
}

TEST(SweepSpecTest, SchemeAxisImpliesPipelineMode)
{
    SweepSpec s =
        SweepSpec::parseGrid("workload=mcf;scheme=baseline,hgvq");
    EXPECT_EQ(s.mode, JobMode::Pipeline);
    EXPECT_EQ(s.schemes,
              (std::vector<std::string>{"baseline", "hgvq"}));
}

TEST(SweepSpecTest, NumericAxes)
{
    SweepSpec s = SweepSpec::parseGrid(
        "table=0,8192;seed=7;instructions=5000");
    EXPECT_EQ(s.tables, (std::vector<uint64_t>{0, 8192}));
    EXPECT_EQ(s.seeds, (std::vector<uint64_t>{7}));
    EXPECT_EQ(s.instructionWindows, (std::vector<uint64_t>{5000}));
}

TEST(SweepSpecDeath, UnknownAxisIsFatal)
{
    EXPECT_EXIT(SweepSpec::parseGrid("flavour=vanilla"),
                ::testing::ExitedWithCode(1), "unknown axis");
}

TEST(SweepSpecDeath, MalformedNumberIsFatal)
{
    EXPECT_EXIT(SweepSpec::parseGrid("order=2m"),
                ::testing::ExitedWithCode(1), "invalid number");
}

TEST(SweepSpecDeath, MixedPredictorAndSchemeIsFatal)
{
    EXPECT_EXIT(SweepSpec::parseGrid("predictor=stride;scheme=hgvq"),
                ::testing::ExitedWithCode(1), "requires mode");
}

TEST(SweepSpecTest, ExpansionIsStableAndComplete)
{
    SweepSpec spec = smallGrid();
    std::vector<JobSpec> a = spec.expand();
    std::vector<JobSpec> b = spec.expand();
    ASSERT_EQ(a.size(), 24u);
    ASSERT_EQ(spec.jobCount(), a.size());
    std::set<std::string> keys;
    for (size_t i = 0; i < a.size(); ++i) {
        EXPECT_EQ(a[i].key(), b[i].key());
        keys.insert(a[i].key());
    }
    // All cells distinct.
    EXPECT_EQ(keys.size(), a.size());
}

// ------------------------------------------------------- thread pool

TEST(ThreadPoolTest, RunsEveryIndexExactlyOnce)
{
    ThreadPool pool(4);
    constexpr size_t n = 1000;
    std::vector<std::atomic<int>> hits(n);
    pool.forEach(n, [&](size_t i) { ++hits[i]; });
    for (size_t i = 0; i < n; ++i)
        EXPECT_EQ(hits[i].load(), 1) << "index " << i;
}

TEST(ThreadPoolTest, ZeroJobsIsANoOp)
{
    ThreadPool pool(4);
    pool.forEach(0, [&](size_t) { FAIL() << "no task expected"; });
}

TEST(ThreadPoolTest, DefaultsToHardwareConcurrency)
{
    ThreadPool pool(0);
    EXPECT_GE(pool.threads(), 1u);
}

// ------------------------------------------------- strict flag parse

TEST(ParseFlagTest, AcceptsPlainDecimal)
{
    EXPECT_EQ(parseU64Flag("--x", "2000000"), 2'000'000u);
    EXPECT_EQ(parseU64Flag("--x", "0", true), 0u);
}

TEST(ParseFlagDeath, RejectsTrailingGarbage)
{
    EXPECT_EXIT(parseU64Flag("--instructions", "2m"),
                ::testing::ExitedWithCode(1), "invalid number");
}

TEST(ParseFlagDeath, RejectsEmptyNegativeZeroAndOverflow)
{
    EXPECT_EXIT(parseU64Flag("--x", ""),
                ::testing::ExitedWithCode(1), "empty");
    EXPECT_EXIT(parseU64Flag("--x", "-3"),
                ::testing::ExitedWithCode(1), "invalid number");
    EXPECT_EXIT(parseU64Flag("--x", "0"),
                ::testing::ExitedWithCode(1), "non-zero");
    EXPECT_EXIT(parseU64Flag("--x", "99999999999999999999999"),
                ::testing::ExitedWithCode(1), "out of range");
}

// ------------------------------------------------------- determinism

/** Parse a jsonl file into {deterministic-identity → metrics-json}. */
std::map<std::string, std::string>
readJsonl(const std::string &path)
{
    std::map<std::string, std::string> out;
    std::ifstream in(path);
    EXPECT_TRUE(in.is_open()) << path;
    std::string line;
    while (std::getline(in, line)) {
        auto mpos = line.find("\"metrics\":");
        auto mend = line.find('}', mpos);
        EXPECT_NE(mpos, std::string::npos) << line;
        EXPECT_NE(mend, std::string::npos) << line;
        if (mpos == std::string::npos || mend == std::string::npos)
            continue;
        // Identity: everything before "metrics" minus the trailing
        // comma; metrics: the braced object.
        std::string identity = line.substr(0, mpos);
        std::string metrics = line.substr(mpos, mend - mpos + 1);
        EXPECT_TRUE(out.emplace(identity, metrics).second)
            << "duplicate job line: " << identity;
    }
    return out;
}

TEST(SweepRunnerTest, MetricsBitIdenticalAcrossThreadCounts)
{
    std::string p1 = tempPath("t1.jsonl");
    std::string p4 = tempPath("t4.jsonl");

    for (auto [threads, path] :
         {std::pair<unsigned, std::string>{1, p1}, {4, p4}}) {
        SweepRunner sweep(smallGrid());
        JsonlSink jsonl(path);
        sweep.addSink(jsonl);
        SweepOptions opt;
        opt.threads = threads;
        SweepSummary s = sweep.run(opt);
        EXPECT_EQ(s.totalJobs, 24u);
        EXPECT_EQ(s.ranJobs, 24u);
        EXPECT_EQ(s.skippedJobs, 0u);
    }

    auto r1 = readJsonl(p1);
    auto r4 = readJsonl(p4);
    ASSERT_EQ(r1.size(), 24u);
    // Order-independent: compare as identity→metrics maps. Metric
    // strings are %.17g renderings, so equality is bit-identity.
    EXPECT_EQ(r1, r4);
    std::remove(p1.c_str());
    std::remove(p4.c_str());
}

TEST(SweepRunnerTest, PipelineJobsDeterministicToo)
{
    SweepSpec spec;
    spec.mode = JobMode::Pipeline;
    spec.workloads = {"micro.stride", "micro.spillfill"};
    spec.schemes = {"baseline", "hgvq"};
    spec.orders = {16};
    spec.defaultInstructions = 8'000;
    spec.warmup = 500;

    auto metricsAt = [&](unsigned threads) {
        SweepRunner sweep(spec);
        CollectingSink collect;
        sweep.addSink(collect);
        SweepOptions opt;
        opt.threads = threads;
        sweep.run(opt);
        std::map<std::string, std::vector<std::pair<std::string,
                                                    double>>> out;
        for (const auto &r : collect.records())
            out[r.spec.key()] = r.result.metrics;
        return out;
    };
    auto m1 = metricsAt(1);
    auto m3 = metricsAt(3);
    ASSERT_EQ(m1.size(), 4u);
    EXPECT_EQ(m1, m3); // exact double equality, key by key
}

// ------------------------------------------------------------ resume

TEST(SweepRunnerTest, ManifestResumeSkipsCompletedJobs)
{
    std::string manifest = tempPath("resume.manifest");
    std::remove(manifest.c_str());
    SweepSpec spec = smallGrid();

    // Pre-mark half the grid as done, as if a previous run was
    // killed partway.
    std::vector<JobSpec> jobs = spec.expand();
    {
        Manifest m(manifest);
        for (size_t i = 0; i < jobs.size() / 2; ++i)
            m.markDone(jobs[i].key());
    }

    {
        SweepRunner sweep(spec);
        CollectingSink collect;
        sweep.addSink(collect);
        SweepOptions opt;
        opt.threads = 2;
        opt.manifestPath = manifest;
        SweepSummary s = sweep.run(opt);
        EXPECT_EQ(s.totalJobs, 24u);
        EXPECT_EQ(s.skippedJobs, 12u);
        EXPECT_EQ(s.ranJobs, 12u);
        // The jobs that ran are exactly the un-marked half.
        std::set<size_t> ranIndices;
        for (const auto &r : collect.records())
            ranIndices.insert(r.index);
        for (size_t i = jobs.size() / 2; i < jobs.size(); ++i)
            EXPECT_TRUE(ranIndices.count(i)) << "missing job " << i;
    }

    // Second rerun: everything is recorded now, nothing runs.
    {
        SweepRunner sweep(spec);
        SweepOptions opt;
        opt.manifestPath = manifest;
        SweepSummary s = sweep.run(opt);
        EXPECT_EQ(s.ranJobs, 0u);
        EXPECT_EQ(s.skippedJobs, 24u);
    }
    std::remove(manifest.c_str());
}

TEST(SweepRunnerTest, CancelFlagStopsDispatchButKeepsCompletedWork)
{
    SweepSpec spec = smallGrid();

    // Pre-set cancellation: nothing may dispatch, but the sinks must
    // still be finished so buffered output flushes.
    {
        std::atomic<bool> cancel{true};
        SweepRunner sweep(spec);
        CollectingSink collect;
        sweep.addSink(collect);
        SweepOptions opt;
        opt.cancel = &cancel;
        SweepSummary s = sweep.run(opt);
        EXPECT_EQ(s.ranJobs, 0u);
        EXPECT_EQ(s.canceledJobs, 24u);
        EXPECT_TRUE(collect.records().empty());
    }

    // Cancel after the first job reaches a sink: the remaining grid
    // is skipped, and everything that completed stays delivered.
    {
        std::atomic<bool> cancel{false};
        SweepRunner sweep(spec);
        CollectingSink collect;

        struct Tripwire : ResultSink
        {
            std::atomic<bool> *flag;
            explicit Tripwire(std::atomic<bool> *flag) : flag(flag) {}
            void onJob(const JobRecord &) override
            {
                flag->store(true, std::memory_order_relaxed);
            }
        } trip(&cancel);

        sweep.addSink(trip);
        sweep.addSink(collect);
        SweepOptions opt;
        opt.threads = 1;
        opt.cancel = &cancel;
        SweepSummary s = sweep.run(opt);
        EXPECT_EQ(s.ranJobs, 1u);
        EXPECT_EQ(s.canceledJobs, 23u);
        EXPECT_EQ(s.ranJobs + s.canceledJobs, s.totalJobs);
        EXPECT_EQ(collect.records().size(), 1u);
    }
}

TEST(ManifestTest, PersistsAcrossReopen)
{
    std::string path = tempPath("manifest.txt");
    std::remove(path.c_str());
    {
        Manifest m(path);
        EXPECT_FALSE(m.contains("job-a"));
        m.markDone("job-a");
        m.markDone("job-b");
        m.markDone("job-a"); // duplicate: recorded once
        EXPECT_EQ(m.size(), 2u);
    }
    {
        Manifest m(path);
        EXPECT_TRUE(m.contains("job-a"));
        EXPECT_TRUE(m.contains("job-b"));
        EXPECT_FALSE(m.contains("job-c"));
        EXPECT_EQ(m.size(), 2u);
    }
    std::remove(path.c_str());
}

TEST(ManifestTest, IgnoresTornFinalLine)
{
    std::string path = tempPath("torn.manifest");
    {
        std::ofstream out(path, std::ios::trunc);
        out << "job-a\njob-b"; // no trailing newline: torn append
    }
    Manifest m(path);
    EXPECT_TRUE(m.contains("job-a"));
    EXPECT_FALSE(m.contains("job-b"));
    std::remove(path.c_str());
}

// ------------------------------------------------------------- sinks

TEST(SinkTest, CsvRowsSortedByGridIndex)
{
    std::string path = tempPath("out.csv");
    SweepSpec spec = smallGrid();
    SweepRunner sweep(spec);
    CsvSink csv(path);
    sweep.addSink(csv);
    SweepOptions opt;
    opt.threads = 4;
    sweep.run(opt);

    std::ifstream in(path);
    ASSERT_TRUE(in.is_open());
    std::string line;
    ASSERT_TRUE(std::getline(in, line));
    EXPECT_EQ(line.rfind("index,workload,mode,predictor,scheme", 0),
              0u)
        << line;
    EXPECT_NE(line.find("accuracy"), std::string::npos);
    size_t expected = 0, rows = 0;
    while (std::getline(in, line)) {
        // Rows come out in grid order whatever order jobs finished.
        EXPECT_EQ(line.substr(0, line.find(',')),
                  std::to_string(expected));
        ++expected;
        ++rows;
    }
    EXPECT_EQ(rows, 24u);
    std::remove(path.c_str());
}

TEST(SinkTest, TableSinkRendersOneRowPerJob)
{
    SweepSpec spec = smallGrid();
    spec.workloads = {"micro.stride"};
    spec.seeds = {1};
    SweepRunner sweep(spec);
    std::ostringstream os;
    TableSink table(os, "unit sweep");
    sweep.addSink(table);
    sweep.run(SweepOptions());
    std::string text = os.str();
    EXPECT_NE(text.find("unit sweep"), std::string::npos);
    EXPECT_NE(text.find("accuracy"), std::string::npos);
    EXPECT_NE(text.find("micro.stride/gdiff[o=4,s=1]"),
              std::string::npos)
        << text;
}

TEST(SinkTest, JsonlAppendModeAccumulates)
{
    std::string path = tempPath("append.jsonl");
    JobRecord rec;
    rec.index = 0;
    rec.spec = JobSpec{};
    rec.result.metrics = {{"accuracy", 0.5}};
    {
        JsonlSink sink(path);
        sink.onJob(rec);
        sink.finish();
    }
    {
        JsonlSink sink(path, /*append=*/true);
        rec.index = 1;
        sink.onJob(rec);
        sink.finish();
    }
    std::ifstream in(path);
    size_t lines = 0;
    std::string line;
    while (std::getline(in, line))
        ++lines;
    EXPECT_EQ(lines, 2u);
    std::remove(path.c_str());
}

// --------------------------------------------- sink robustness
// Labels and metric names can contain CSV/JSON metacharacters (a
// workload named "a,b" or a metric with a quote); the sinks must
// stay parseable.

TEST(SinkRobustnessTest, JsonlEscapesQuotesBackslashesAndControls)
{
    std::string path = tempPath("escape.jsonl");
    JobRecord rec;
    rec.index = 0;
    rec.spec = JobSpec{};
    rec.spec.workload = "we\"ird\\name\nwith,stuff\ttab";
    rec.result.metrics = {{"acc\"ur,acy", 0.5}};
    {
        JsonlSink sink(path);
        sink.onJob(rec);
        sink.finish();
    }
    std::ifstream in(path);
    std::string line, extra;
    ASSERT_TRUE(std::getline(in, line));
    // The embedded newline must be escaped: exactly one physical
    // line in the file.
    EXPECT_FALSE(std::getline(in, extra)) << extra;
    EXPECT_NE(line.find("we\\\"ird\\\\name\\nwith,stuff\\ttab"),
              std::string::npos)
        << line;
    EXPECT_NE(line.find("acc\\\"ur,acy"), std::string::npos) << line;
    std::remove(path.c_str());
}

TEST(SinkRobustnessTest, CsvQuotesSeparatorsQuotesAndNewlines)
{
    std::string path = tempPath("quoting.csv");
    JobRecord rec;
    rec.index = 0;
    rec.spec = JobSpec{};
    rec.spec.mode = JobMode::Profile;
    rec.spec.workload = "evil \"quoted\",name";
    rec.spec.predictor = "str,ide";
    rec.result.metrics = {{"metric,with\"meta", 1.0}};
    {
        CsvSink sink(path);
        sink.onJob(rec);
        sink.finish();
    }
    std::ifstream in(path);
    std::stringstream ss;
    ss << in.rdbuf();
    std::string text = ss.str();
    // RFC 4180: fields wrapped in quotes, inner quotes doubled.
    EXPECT_NE(text.find("\"evil \"\"quoted\"\",name\""),
              std::string::npos)
        << text;
    EXPECT_NE(text.find("\"str,ide\""), std::string::npos) << text;
    EXPECT_NE(text.find("\"metric,with\"\"meta\""),
              std::string::npos)
        << text;
    std::remove(path.c_str());
}

TEST(SinkRobustnessTest, CsvLeavesPlainFieldsUnquoted)
{
    std::string path = tempPath("plain.csv");
    JobRecord rec;
    rec.index = 0;
    rec.spec = JobSpec{};
    rec.spec.mode = JobMode::Profile;
    rec.spec.workload = "mcf";
    rec.spec.predictor = "gdiff";
    rec.result.metrics = {{"accuracy", 0.25}};
    {
        CsvSink sink(path);
        sink.onJob(rec);
        sink.finish();
    }
    std::ifstream in(path);
    std::string header, row;
    ASSERT_TRUE(std::getline(in, header));
    ASSERT_TRUE(std::getline(in, row));
    EXPECT_EQ(header.find('"'), std::string::npos) << header;
    EXPECT_EQ(row.find('"'), std::string::npos) << row;
    EXPECT_EQ(row.rfind("0,mcf,profile,gdiff,", 0), 0u) << row;
    std::remove(path.c_str());
}

TEST(SinkRobustnessTest, TableCsvQuotesLabelsAndCells)
{
    stats::Table t("robustness", "row,label");
    t.addColumn("col\"A");
    t.addColumn("plain");
    t.beginRow("r1,x");
    t.cell("va\nl");
    t.cell("ok");
    std::ostringstream os;
    t.printCsv(os);
    EXPECT_EQ(os.str(), "\"row,label\",\"col\"\"A\",plain\n"
                        "\"r1,x\",\"va\nl\",ok\n");
}

// ----------------------------------------------------------- factory

TEST(FactoryTest, EveryRegisteredNameConstructs)
{
    for (const auto &name : predictorNames()) {
        auto p = makePredictor(name, 8, 1024);
        ASSERT_NE(p, nullptr) << name;
    }
    for (const auto &name : schemeNames()) {
        auto s = makeScheme(name, 16, 1024);
        ASSERT_NE(s, nullptr) << name;
    }
}

TEST(FactoryDeath, UnknownNamesAreFatal)
{
    EXPECT_EXIT(makePredictor("psychic", 8, 0),
                ::testing::ExitedWithCode(1), "unknown predictor");
    EXPECT_EXIT(makeScheme("psychic", 8, 0),
                ::testing::ExitedWithCode(1), "unknown scheme");
}

} // namespace
} // namespace runner
} // namespace gdiff
