/**
 * @file
 * Reproduction-shape integration tests: the paper's headline
 * qualitative results, asserted end-to-end at small instruction
 * budgets so calibration regressions in the kernels, predictors, or
 * pipeline are caught by `ctest` rather than by eyeballing bench
 * output. Each test names the paper claim it pins.
 */

#include <gtest/gtest.h>

#include "core/gdiff.hh"
#include "pipeline/ooo_model.hh"
#include "predictors/fcm.hh"
#include "predictors/stride.hh"
#include "sim/profile.hh"
#include "workload/workload.hh"

namespace gdiff {
namespace {

struct ProfileAcc
{
    double stride;
    double dfcm;
    double gdiff;
};

ProfileAcc
profileRun(const std::string &name, unsigned order = 8,
           unsigned delay = 0, uint64_t budget = 300'000)
{
    workload::Workload w = workload::makeWorkload(name, 1);
    auto exec = w.makeExecutor();
    predictors::StridePredictor stride(0);
    predictors::FcmConfig fcfg;
    fcfg.level1Entries = 0;
    predictors::DfcmPredictor dfcm(fcfg);
    core::GDiffConfig gcfg;
    gcfg.order = order;
    gcfg.tableEntries = 0;
    gcfg.valueDelay = delay;
    core::GDiffPredictor gd(gcfg);

    sim::ProfileConfig pcfg;
    pcfg.maxInstructions = budget;
    pcfg.warmupInstructions = budget / 5;
    sim::ValueProfileRunner runner(pcfg);
    runner.addPredictor(stride);
    runner.addPredictor(dfcm);
    runner.addPredictor(gd);
    runner.run(*exec);
    return ProfileAcc{runner.results()[0].accuracyAll.value(),
                      runner.results()[1].accuracyAll.value(),
                      runner.results()[2].accuracyAll.value()};
}

// ---- Fig. 8: "gdiff performs better consistently for all the
// benchmarks" (within a small tolerance for gap, everyone's floor) --

class Fig8Shape : public ::testing::TestWithParam<std::string>
{
};

TEST_P(Fig8Shape, GdiffBeatsOrMatchesLocals)
{
    ProfileAcc a = profileRun(GetParam());
    double locals = std::max(a.stride, a.dfcm);
    // gap is the paper's floor case where all predictors cluster;
    // allow it to tie within 12 points, require a win elsewhere.
    double slack = GetParam() == "gap" ? 0.12 : 0.0;
    EXPECT_GE(a.gdiff + slack, locals) << GetParam();
}

INSTANTIATE_TEST_SUITE_P(
    AllKernels, Fig8Shape,
    ::testing::ValuesIn(workload::specWorkloadNames()),
    [](const ::testing::TestParamInfo<std::string> &info) {
        return info.param;
    });

TEST(Fig8Shape, AverageNearPaper)
{
    double sum = 0;
    for (const auto &n : workload::specWorkloadNames())
        sum += profileRun(n, 8, 0, 200'000).gdiff;
    double avg = sum / 10.0;
    // paper: 73%; accept the reproduction band
    EXPECT_GT(avg, 0.60);
    EXPECT_LT(avg, 0.85);
}

// ---- Fig. 8 / §3: mcf is gdiff's standout; parser & twolf are the
// big gdiff-over-local wins ------------------------------------------

TEST(Fig8Shape, McfIsAStandout)
{
    EXPECT_GT(profileRun("mcf").gdiff, 0.75);
}

TEST(Fig8Shape, ParserGainOverLocalIsLarge)
{
    ProfileAcc a = profileRun("parser");
    EXPECT_GT(a.gdiff - a.stride, 0.30); // paper: up to +34%
}

// ---- Fig. 1: the spill/fill reload --------------------------------

TEST(Fig1Shape, FillLoadLocallyHardGloballyEasy)
{
    workload::Workload w = workload::makeWorkload("parser", 1);
    uint64_t fill_pc = w.markerPc("fill_load");
    auto exec = w.makeExecutor();
    predictors::StridePredictor stride(0);
    core::GDiffConfig gcfg;
    gcfg.order = 8;
    gcfg.tableEntries = 0;
    core::GDiffPredictor gd(gcfg);

    uint64_t fills = 0, stride_ok = 0, gdiff_ok = 0;
    workload::TraceRecord r;
    for (uint64_t i = 0; i < 200'000 && exec->next(r); ++i) {
        if (!r.producesValue())
            continue;
        int64_t guess;
        bool is_fill = r.pc == fill_pc;
        if (stride.predict(r.pc, guess) && guess == r.value && is_fill)
            ++stride_ok;
        stride.update(r.pc, r.value);
        if (gd.predict(r.pc, guess) && guess == r.value && is_fill)
            ++gdiff_ok;
        gd.update(r.pc, r.value);
        fills += is_fill;
    }
    ASSERT_GT(fills, 1000u);
    EXPECT_LT(stride_ok * 10, fills);     // < 10% locally
    EXPECT_GT(gdiff_ok * 10, fills * 9);  // > 90% globally
}

// ---- Fig. 10 / §3.1: the gap value-delay anomaly -------------------

TEST(Fig10Shape, GapAccuracyPeaksAtNonZeroDelay)
{
    double t0 = profileRun("gap", 8, 0).gdiff;
    double t2 = profileRun("gap", 8, 2).gdiff;
    double t16 = profileRun("gap", 8, 16).gdiff;
    EXPECT_GT(t2, t0 + 0.02); // the paper's anomaly
    EXPECT_LT(t16, t0);       // and the eventual collapse
}

TEST(Fig10Shape, AverageDegradesWithDelay)
{
    double s0 = 0, s8 = 0;
    for (const auto &n : workload::specWorkloadNames()) {
        s0 += profileRun(n, 8, 0, 150'000).gdiff;
        s8 += profileRun(n, 8, 8, 150'000).gdiff;
    }
    EXPECT_LT(s8, s0 - 1.0); // at least 10 points on average
}

// ---- §3: gap improves sharply from q=8 to q=32 ----------------------

TEST(QueueSizeShape, GapQ32BeatsQ8)
{
    double q8 = profileRun("gap", 8).gdiff;
    double q32 = profileRun("gap", 32).gdiff;
    EXPECT_GT(q32, q8 + 0.10); // paper: ~40% -> 59.7%
}

// ---- Figs. 13/16: SGVQ collapses, HGVQ restores, coverage leads -----

TEST(PipelineShape, HgvqBeatsSgvqAndCoversMoreThanLocalStride)
{
    double cov_sgvq = 0, cov_hgvq = 0, cov_ls = 0;
    for (const std::string name : {"parser", "mcf", "gcc"}) {
        auto run = [&](pipeline::VpScheme &s) {
            workload::Workload w = workload::makeWorkload(name, 1);
            auto exec = w.makeExecutor();
            pipeline::OooPipeline pipe(
                pipeline::PipelineConfig::paper(), s);
            pipe.run(*exec, 120'000, 30'000);
            return s.coverage().value();
        };
        core::GDiffConfig gcfg;
        gcfg.order = 32;
        gcfg.tableEntries = 8192;
        pipeline::SgvqScheme sgvq(gcfg);
        pipeline::HgvqScheme hgvq(gcfg);
        pipeline::LocalScheme ls(
            std::make_unique<predictors::StridePredictor>(8192),
            "l_stride");
        cov_sgvq += run(sgvq);
        cov_hgvq += run(hgvq);
        cov_ls += run(ls);
    }
    EXPECT_GT(cov_hgvq, cov_sgvq + 0.5); // HGVQ >> SGVQ (paper §5)
    EXPECT_GT(cov_hgvq, cov_ls);         // and beats local stride
}

// ---- Fig. 19 / §7: mcf gets the largest gdiff speedup ---------------

TEST(SpeedupShape, McfGainsFromGdiffValueSpeculation)
{
    auto ipc = [&](pipeline::VpScheme &s) {
        workload::Workload w = workload::makeWorkload("mcf", 1);
        auto exec = w.makeExecutor();
        pipeline::OooPipeline pipe(pipeline::PipelineConfig::paper(),
                                   s);
        return pipe.run(*exec, 150'000, 30'000).ipc;
    };
    pipeline::NoPrediction base;
    core::GDiffConfig gcfg;
    gcfg.order = 32;
    gcfg.tableEntries = 8192;
    pipeline::HgvqScheme hgvq(gcfg);
    double ipc0 = ipc(base);
    double ipc1 = ipc(hgvq);
    EXPECT_GT(ipc1, ipc0 * 1.10); // >= 10% speedup on mcf
}

} // namespace
} // namespace gdiff
