/**
 * @file
 * Unit tests for src/stats: counters, ratios, histograms, tables.
 */

#include <gtest/gtest.h>

#include <sstream>

#include "stats/counter.hh"
#include "stats/histogram.hh"
#include "stats/table.hh"

namespace gdiff {
namespace stats {
namespace {

TEST(Counter, Basics)
{
    Counter c;
    EXPECT_EQ(c.value(), 0u);
    c.increment();
    c.add(4);
    EXPECT_EQ(c.value(), 5u);
    c.reset();
    EXPECT_EQ(c.value(), 0u);
}

TEST(Ratio, EmptyIsZero)
{
    Ratio r;
    EXPECT_DOUBLE_EQ(r.value(), 0.0);
    EXPECT_DOUBLE_EQ(r.percent(), 0.0);
}

TEST(Ratio, RecordsHitsAndMisses)
{
    Ratio r;
    r.record(true);
    r.record(true);
    r.record(false);
    r.record(false);
    EXPECT_EQ(r.hits(), 2u);
    EXPECT_EQ(r.total(), 4u);
    EXPECT_DOUBLE_EQ(r.value(), 0.5);
    EXPECT_DOUBLE_EQ(r.percent(), 50.0);
}

TEST(Ratio, BatchAccumulation)
{
    Ratio r;
    r.addBatch(3, 10);
    r.addBatch(7, 10);
    EXPECT_DOUBLE_EQ(r.value(), 0.5);
}

TEST(Average, Mean)
{
    Average a;
    EXPECT_DOUBLE_EQ(a.value(), 0.0);
    a.record(2.0);
    a.record(4.0);
    a.record(6.0);
    EXPECT_DOUBLE_EQ(a.value(), 4.0);
    EXPECT_EQ(a.samples(), 3u);
}

TEST(Histogram, BucketsAndOverflow)
{
    Histogram h(4);
    h.record(0);
    h.record(1);
    h.record(1);
    h.record(3);
    h.record(9);  // overflow
    h.record(100);
    EXPECT_EQ(h.bucket(0), 1u);
    EXPECT_EQ(h.bucket(1), 2u);
    EXPECT_EQ(h.bucket(2), 0u);
    EXPECT_EQ(h.bucket(3), 1u);
    EXPECT_EQ(h.overflow(), 2u);
    EXPECT_EQ(h.samples(), 6u);
    EXPECT_EQ(h.maxSample(), 100u);
}

TEST(Histogram, MeanIncludesOverflowTrueValues)
{
    Histogram h(2);
    h.record(0);
    h.record(10);
    EXPECT_DOUBLE_EQ(h.mean(), 5.0);
}

TEST(Histogram, Fractions)
{
    Histogram h(2);
    h.record(0);
    h.record(0);
    h.record(1);
    h.record(1);
    EXPECT_DOUBLE_EQ(h.fraction(0), 0.5);
    EXPECT_DOUBLE_EQ(h.fraction(1), 0.5);
}

TEST(Histogram, Reset)
{
    Histogram h(2);
    h.record(1);
    h.reset();
    EXPECT_EQ(h.samples(), 0u);
    EXPECT_EQ(h.bucket(1), 0u);
    EXPECT_DOUBLE_EQ(h.mean(), 0.0);
}

TEST(HistogramDeath, OutOfRangeBucket)
{
    Histogram h(2);
    EXPECT_DEATH((void)h.bucket(2), "out of range");
}

TEST(Table, AlignedOutputContainsCells)
{
    Table t("My Caption", "bench");
    t.addColumn("acc");
    t.addColumn("cov");
    t.beginRow("mcf");
    t.cellPercent(0.861);
    t.cellPercent(0.5);
    t.beginRow("parser");
    t.cellPercent(0.789);
    t.cellPercent(0.25, 2);

    std::ostringstream os;
    t.print(os);
    std::string out = os.str();
    EXPECT_NE(out.find("My Caption"), std::string::npos);
    EXPECT_NE(out.find("86.1%"), std::string::npos);
    EXPECT_NE(out.find("78.9%"), std::string::npos);
    EXPECT_NE(out.find("25.00%"), std::string::npos);
    EXPECT_NE(out.find("mcf"), std::string::npos);
}

TEST(Table, CsvOutput)
{
    Table t("cap", "name");
    t.addColumn("v");
    t.beginRow("a");
    t.cellInt(42);
    std::ostringstream os;
    t.printCsv(os);
    EXPECT_EQ(os.str(), "name,v\na,42\n");
}

TEST(Table, CellTypes)
{
    Table t("cap", "k");
    t.addColumn("c1");
    t.addColumn("c2");
    t.addColumn("c3");
    t.beginRow("r");
    t.cellInt(-5);
    t.cellDouble(1.23456, 2);
    t.cell("text");
    std::ostringstream os;
    t.print(os);
    EXPECT_NE(os.str().find("-5"), std::string::npos);
    EXPECT_NE(os.str().find("1.23"), std::string::npos);
    EXPECT_NE(os.str().find("text"), std::string::npos);
}

TEST(TableDeath, TooManyCells)
{
    Table t("cap", "k");
    t.addColumn("c");
    t.beginRow("r");
    t.cellInt(1);
    EXPECT_DEATH(t.cellInt(2), "too many cells");
}

TEST(TableDeath, ColumnAfterRows)
{
    Table t("cap", "k");
    t.addColumn("c");
    t.beginRow("r");
    EXPECT_DEATH(t.addColumn("late"), "before any row");
}

} // namespace
} // namespace stats
} // namespace gdiff
