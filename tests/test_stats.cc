/**
 * @file
 * Unit tests for src/stats: counters, ratios, histograms, tables.
 */

#include <gtest/gtest.h>

#include <sstream>

#include "stats/counter.hh"
#include "stats/histogram.hh"
#include "stats/table.hh"

namespace gdiff {
namespace stats {
namespace {

TEST(Counter, Basics)
{
    Counter c;
    EXPECT_EQ(c.value(), 0u);
    c.increment();
    c.add(4);
    EXPECT_EQ(c.value(), 5u);
    c.reset();
    EXPECT_EQ(c.value(), 0u);
}

TEST(Ratio, EmptyIsZero)
{
    Ratio r;
    EXPECT_DOUBLE_EQ(r.value(), 0.0);
    EXPECT_DOUBLE_EQ(r.percent(), 0.0);
}

TEST(Ratio, RecordsHitsAndMisses)
{
    Ratio r;
    r.record(true);
    r.record(true);
    r.record(false);
    r.record(false);
    EXPECT_EQ(r.hits(), 2u);
    EXPECT_EQ(r.total(), 4u);
    EXPECT_DOUBLE_EQ(r.value(), 0.5);
    EXPECT_DOUBLE_EQ(r.percent(), 50.0);
}

TEST(Ratio, BatchAccumulation)
{
    Ratio r;
    r.addBatch(3, 10);
    r.addBatch(7, 10);
    EXPECT_DOUBLE_EQ(r.value(), 0.5);
}

TEST(Average, Mean)
{
    Average a;
    EXPECT_DOUBLE_EQ(a.value(), 0.0);
    a.record(2.0);
    a.record(4.0);
    a.record(6.0);
    EXPECT_DOUBLE_EQ(a.value(), 4.0);
    EXPECT_EQ(a.samples(), 3u);
}

TEST(Histogram, BucketsAndOverflow)
{
    Histogram h(4);
    h.record(0);
    h.record(1);
    h.record(1);
    h.record(3);
    h.record(9);  // overflow
    h.record(100);
    EXPECT_EQ(h.bucket(0), 1u);
    EXPECT_EQ(h.bucket(1), 2u);
    EXPECT_EQ(h.bucket(2), 0u);
    EXPECT_EQ(h.bucket(3), 1u);
    EXPECT_EQ(h.overflow(), 2u);
    EXPECT_EQ(h.samples(), 6u);
    EXPECT_EQ(h.maxSample(), 100u);
}

TEST(Histogram, MeanIncludesOverflowTrueValues)
{
    Histogram h(2);
    h.record(0);
    h.record(10);
    EXPECT_DOUBLE_EQ(h.mean(), 5.0);
}

TEST(Histogram, Fractions)
{
    Histogram h(2);
    h.record(0);
    h.record(0);
    h.record(1);
    h.record(1);
    EXPECT_DOUBLE_EQ(h.fraction(0), 0.5);
    EXPECT_DOUBLE_EQ(h.fraction(1), 0.5);
}

TEST(Histogram, Reset)
{
    Histogram h(2);
    h.record(1);
    h.reset();
    EXPECT_EQ(h.samples(), 0u);
    EXPECT_EQ(h.bucket(1), 0u);
    EXPECT_DOUBLE_EQ(h.mean(), 0.0);
}

TEST(HistogramDeath, OutOfRangeBucket)
{
    Histogram h(2);
    EXPECT_DEATH((void)h.bucket(2), "out of range");
}

TEST(Counter, LargeAdditionsDoNotTruncate)
{
    Counter c;
    // Counts near 2^63 must keep full 64-bit precision (a billion-way
    // sweep's instruction totals land in this range).
    c.add(uint64_t(1) << 63);
    c.add((uint64_t(1) << 63) - 1);
    EXPECT_EQ(c.value(), ~uint64_t(0));
    c.reset();
    c.add(0);
    EXPECT_EQ(c.value(), 0u);
}

TEST(Ratio, ZeroTotalBatchIsHarmless)
{
    Ratio r;
    r.addBatch(0, 0);
    EXPECT_EQ(r.value(), 0.0);
    r.addBatch(3, 4);
    r.addBatch(0, 0);
    EXPECT_DOUBLE_EQ(r.value(), 0.75);
}

TEST(Histogram, PercentileOfEmptyIsZero)
{
    Histogram h(8);
    EXPECT_EQ(h.percentile(0.0), 0u);
    EXPECT_EQ(h.percentile(0.5), 0u);
    EXPECT_EQ(h.percentile(1.0), 0u);
}

TEST(Histogram, PercentileOfSingleSample)
{
    Histogram h(8);
    h.record(5);
    // With one sample, every percentile is that sample.
    EXPECT_EQ(h.percentile(0.0), 5u);
    EXPECT_EQ(h.percentile(0.5), 5u);
    EXPECT_EQ(h.percentile(1.0), 5u);
}

TEST(Histogram, PercentileWalksTheDistribution)
{
    Histogram h(16);
    for (uint64_t v = 0; v < 10; ++v)
        h.record(v); // one sample in each of buckets 0..9
    EXPECT_EQ(h.percentile(0.0), 0u);  // smallest recorded sample
    EXPECT_EQ(h.percentile(0.1), 0u);  // ceil(0.1*10)=1 -> bucket 0
    EXPECT_EQ(h.percentile(0.5), 4u);  // ceil(0.5*10)=5 -> bucket 4
    EXPECT_EQ(h.percentile(0.95), 9u); // ceil(9.5)=10 -> bucket 9
    EXPECT_EQ(h.percentile(1.0), 9u);
}

TEST(Histogram, PercentileInOverflowReportsMaxSample)
{
    Histogram h(4);
    h.record(1);
    h.record(100); // overflow
    h.record(200); // overflow, the max
    // The median lands in the overflow bucket, where per-value
    // resolution is gone; the documented bound is maxSample().
    EXPECT_EQ(h.percentile(0.5), 200u);
    EXPECT_EQ(h.percentile(1.0), 200u);
    EXPECT_EQ(h.percentile(0.1), 1u); // still resolved in-range
}

TEST(Histogram, MergeOfDisjointRanges)
{
    // One thread's histogram saw only small samples, another's only
    // large ones (plus overflow) — exactly the shape obs::snapshot()
    // merges. The union must behave as if one histogram saw both.
    Histogram low(8), high(8);
    low.record(0);
    low.record(1);
    low.record(1);
    high.record(6);
    high.record(7);
    high.record(50); // overflow

    low.merge(high);
    EXPECT_EQ(low.samples(), 6u);
    EXPECT_EQ(low.bucket(1), 2u);
    EXPECT_EQ(low.bucket(6), 1u);
    EXPECT_EQ(low.overflow(), 1u);
    EXPECT_EQ(low.maxSample(), 50u);
    EXPECT_DOUBLE_EQ(low.mean(), (0 + 1 + 1 + 6 + 7 + 50) / 6.0);
    EXPECT_EQ(low.percentile(0.5), 1u);
    EXPECT_EQ(low.percentile(1.0), 50u);
}

TEST(Histogram, VarianceFromRunningSums)
{
    // {2, 4, 4, 4, 5, 5, 7, 9}: mean 5, population variance 4.
    Histogram h(16);
    for (uint64_t v : {2u, 4u, 4u, 4u, 5u, 5u, 7u, 9u})
        h.record(v);
    EXPECT_DOUBLE_EQ(h.mean(), 5.0);
    EXPECT_DOUBLE_EQ(h.variance(), 4.0);
    EXPECT_DOUBLE_EQ(h.stddev(), 2.0);
}

TEST(Histogram, VarianceOfFewerThanTwoSamplesIsZero)
{
    Histogram h(4);
    EXPECT_DOUBLE_EQ(h.variance(), 0.0);
    EXPECT_DOUBLE_EQ(h.stddev(), 0.0);
    h.record(3);
    EXPECT_DOUBLE_EQ(h.variance(), 0.0);
}

TEST(Histogram, VarianceUsesTrueOverflowValues)
{
    // Overflow samples keep their exact values in the running sums
    // (unlike percentile(), which loses per-value resolution there).
    Histogram h(4);
    h.record(0);
    h.record(100); // -> overflow bucket
    EXPECT_DOUBLE_EQ(h.mean(), 50.0);
    EXPECT_DOUBLE_EQ(h.variance(), 2500.0);
}

TEST(Histogram, VarianceSurvivesMergeOfDisjointRanges)
{
    // Per-thread histograms that saw different halves of the data
    // must merge into the exact whole-population moments.
    Histogram low(8), high(8), all(8);
    for (uint64_t v : {0u, 1u, 1u, 2u}) {
        low.record(v);
        all.record(v);
    }
    for (uint64_t v : {6u, 7u, 50u}) { // 50 overflows
        high.record(v);
        all.record(v);
    }
    low.merge(high);
    EXPECT_DOUBLE_EQ(low.mean(), all.mean());
    EXPECT_DOUBLE_EQ(low.variance(), all.variance());
    EXPECT_DOUBLE_EQ(low.stddev(), all.stddev());
    EXPECT_GT(low.variance(), 0.0);
}

TEST(Histogram, ResetClearsTheMomentSums)
{
    Histogram h(4);
    h.record(3);
    h.record(100);
    h.reset();
    EXPECT_DOUBLE_EQ(h.mean(), 0.0);
    EXPECT_DOUBLE_EQ(h.variance(), 0.0);
    h.record(2);
    h.record(4);
    EXPECT_DOUBLE_EQ(h.mean(), 3.0);
    EXPECT_DOUBLE_EQ(h.variance(), 1.0);
}

TEST(Histogram, MergeWithEmptyIsIdentity)
{
    Histogram h(4), empty(4);
    h.record(2);
    h.merge(empty);
    EXPECT_EQ(h.samples(), 1u);
    EXPECT_EQ(h.percentile(1.0), 2u);

    empty.merge(h);
    EXPECT_EQ(empty.samples(), 1u);
    EXPECT_EQ(empty.bucket(2), 1u);
}

TEST(HistogramDeath, MergeBucketCountMismatch)
{
    Histogram a(4), b(8);
    EXPECT_DEATH(a.merge(b), "4 vs 8 buckets");
}

TEST(Table, AlignedOutputContainsCells)
{
    Table t("My Caption", "bench");
    t.addColumn("acc");
    t.addColumn("cov");
    t.beginRow("mcf");
    t.cellPercent(0.861);
    t.cellPercent(0.5);
    t.beginRow("parser");
    t.cellPercent(0.789);
    t.cellPercent(0.25, 2);

    std::ostringstream os;
    t.print(os);
    std::string out = os.str();
    EXPECT_NE(out.find("My Caption"), std::string::npos);
    EXPECT_NE(out.find("86.1%"), std::string::npos);
    EXPECT_NE(out.find("78.9%"), std::string::npos);
    EXPECT_NE(out.find("25.00%"), std::string::npos);
    EXPECT_NE(out.find("mcf"), std::string::npos);
}

TEST(Table, CsvOutput)
{
    Table t("cap", "name");
    t.addColumn("v");
    t.beginRow("a");
    t.cellInt(42);
    std::ostringstream os;
    t.printCsv(os);
    EXPECT_EQ(os.str(), "name,v\na,42\n");
}

TEST(Table, CellTypes)
{
    Table t("cap", "k");
    t.addColumn("c1");
    t.addColumn("c2");
    t.addColumn("c3");
    t.beginRow("r");
    t.cellInt(-5);
    t.cellDouble(1.23456, 2);
    t.cell("text");
    std::ostringstream os;
    t.print(os);
    EXPECT_NE(os.str().find("-5"), std::string::npos);
    EXPECT_NE(os.str().find("1.23"), std::string::npos);
    EXPECT_NE(os.str().find("text"), std::string::npos);
}

TEST(TableDeath, TooManyCells)
{
    Table t("cap", "k");
    t.addColumn("c");
    t.beginRow("r");
    t.cellInt(1);
    EXPECT_DEATH(t.cellInt(2), "too many cells");
}

TEST(TableDeath, ColumnAfterRows)
{
    Table t("cap", "k");
    t.addColumn("c");
    t.beginRow("r");
    EXPECT_DEATH(t.addColumn("late"), "before any row");
}

} // namespace
} // namespace stats
} // namespace gdiff
