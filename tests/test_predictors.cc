/**
 * @file
 * Baseline-predictor tests: last-value, last-N, stride (2-delta),
 * FCM/DFCM, PI, Markov, confidence, and the shared table machinery.
 */

#include <gtest/gtest.h>

#include "predictors/confidence.hh"
#include "predictors/fcm.hh"
#include "predictors/last_value.hh"
#include "predictors/markov.hh"
#include "predictors/pi.hh"
#include "predictors/stride.hh"
#include "predictors/table.hh"

namespace gdiff {
namespace predictors {
namespace {

constexpr uint64_t pcA = 0x400000;
constexpr uint64_t pcB = 0x400100;

/** Feed a sequence and count correct predictions (predict-then-update). */
template <typename P>
unsigned
score(P &p, uint64_t pc, const std::vector<int64_t> &values)
{
    unsigned correct = 0;
    for (int64_t v : values) {
        int64_t guess = 0;
        if (p.predict(pc, guess) && guess == v)
            ++correct;
        p.update(pc, v);
    }
    return correct;
}

// --------------------------------------------------------- last value

TEST(LastValue, NoPredictionBeforeFirstUpdate)
{
    LastValuePredictor p;
    int64_t v;
    EXPECT_FALSE(p.predict(pcA, v));
}

TEST(LastValue, PredictsRepeats)
{
    LastValuePredictor p;
    // 9 repeats after the first value -> 9 correct.
    EXPECT_EQ(score(p, pcA, std::vector<int64_t>(10, 42)), 9u);
}

TEST(LastValue, PerPcIsolation)
{
    LastValuePredictor p;
    p.update(pcA, 1);
    p.update(pcB, 2);
    int64_t v;
    ASSERT_TRUE(p.predict(pcA, v));
    EXPECT_EQ(v, 1);
    ASSERT_TRUE(p.predict(pcB, v));
    EXPECT_EQ(v, 2);
}

// ------------------------------------------------------------- last N

TEST(LastN, RecoversAlternatingPattern)
{
    LastNValuePredictor p(4);
    // Alternating 5,9,5,9... : after warmup the MRU-repeated value is
    // predicted; it matches half the time at worst and the predictor
    // must at least keep predicting known values.
    std::vector<int64_t> seq;
    for (int i = 0; i < 20; ++i)
        seq.push_back(i % 2 ? 9 : 5);
    score(p, pcA, seq);
    int64_t v;
    ASSERT_TRUE(p.predict(pcA, v));
    EXPECT_TRUE(v == 5 || v == 9);
}

TEST(LastN, DepthBounded)
{
    LastNValuePredictor p(2);
    p.update(pcA, 1);
    p.update(pcA, 2);
    p.update(pcA, 3); // evicts 1
    int64_t v;
    ASSERT_TRUE(p.predict(pcA, v));
    EXPECT_EQ(v, 3); // no repeats seen; MRU is predicted
}

// -------------------------------------------------------------- stride

TEST(Stride, LearnsConstantStride)
{
    StridePredictor p;
    std::vector<int64_t> seq;
    for (int i = 0; i < 12; ++i)
        seq.push_back(100 + 7 * i);
    // 2-delta: needs two equal strides; the remaining 9 are correct.
    EXPECT_EQ(score(p, pcA, seq), 9u);
}

TEST(Stride, StrideZeroIsLastValue)
{
    StridePredictor p;
    EXPECT_EQ(score(p, pcA, std::vector<int64_t>(8, -3)), 7u);
}

TEST(Stride, TwoDeltaSurvivesOneGlitch)
{
    StridePredictor p;
    std::vector<int64_t> seq = {0, 7, 14, 21, 999, 1006, 1013, 1020};
    // 2-delta keeps stride 7 across the glitch, so everything from
    // the glitch's successor onward is correct again: 21 (learned),
    // then 1006, 1013, 1020. Only 999 itself is lost.
    unsigned correct = score(p, pcA, seq);
    EXPECT_EQ(correct, 4u);
}

TEST(Stride, SimpleVariantTracksImmediately)
{
    StridePredictor p(0, false);
    std::vector<int64_t> seq = {0, 5, 10, 15};
    // Simple stride learns after one interval: predicts 10 and 15.
    EXPECT_EQ(score(p, pcA, seq), 2u);
}

TEST(Stride, NegativeStride)
{
    StridePredictor p;
    std::vector<int64_t> seq;
    for (int i = 0; i < 10; ++i)
        seq.push_back(1000 - 13 * i);
    EXPECT_EQ(score(p, pcA, seq), 7u);
}

// ---------------------------------------------------------------- FCM

TEST(Dfcm, LearnsPeriodicStridePattern)
{
    DfcmPredictor p;
    // Period-3 stride pattern: +1,+2,+4 repeating. A stride predictor
    // fails; DFCM captures it once each stride context repeats.
    std::vector<int64_t> seq;
    int64_t v = 0;
    const int64_t strides[3] = {1, 2, 4};
    for (int i = 0; i < 60; ++i) {
        seq.push_back(v);
        v += strides[i % 3];
    }
    unsigned correct = score(p, pcA, seq);
    EXPECT_GT(correct, 45u); // near-perfect after warmup

    StridePredictor s;
    EXPECT_LT(score(s, pcA, seq), 10u);
}

TEST(Dfcm, ConstantSequence)
{
    DfcmPredictor p;
    EXPECT_GT(score(p, pcA, std::vector<int64_t>(30, 5)), 24u);
}

TEST(Fcm, LearnsPeriodicValues)
{
    FcmPredictor p;
    std::vector<int64_t> seq;
    const int64_t vals[4] = {3, 14, 15, 92};
    for (int i = 0; i < 80; ++i)
        seq.push_back(vals[i % 4]);
    EXPECT_GT(score(p, pcA, seq), 65u);
}

TEST(Fcm, RandomValuesUnpredictable)
{
    FcmPredictor p;
    std::vector<int64_t> seq;
    uint64_t x = 12345;
    for (int i = 0; i < 100; ++i) {
        x = x * 6364136223846793005ull + 1442695040888963407ull;
        seq.push_back(static_cast<int64_t>(x >> 8));
    }
    EXPECT_LT(score(p, pcA, seq), 5u);
}

// ----------------------------------------------------------------- PI

TEST(Pi, TracksGlobalNeighbourDifference)
{
    PiPredictor p;
    // Two interleaved PCs: B's value is always A's value + 10.
    unsigned correct_b = 0;
    for (int i = 0; i < 20; ++i) {
        int64_t a = i * 3;
        p.update(pcA, a);
        int64_t guess = 0;
        if (p.predict(pcB, guess) && guess == a + 10)
            ++correct_b;
        p.update(pcB, a + 10);
    }
    EXPECT_GE(correct_b, 18u);
}

// -------------------------------------------------------------- Markov

TEST(Markov, LearnsSuccessorPairs)
{
    MarkovPredictor m(1024, 4);
    // Cyclic address sequence: successor is deterministic.
    const uint64_t addrs[3] = {0x1000, 0x2000, 0x3000};
    unsigned correct = 0, predicted = 0;
    for (int i = 0; i < 30; ++i) {
        uint64_t a = addrs[i % 3];
        uint64_t guess = 0;
        if (m.predict(guess)) {
            ++predicted;
            correct += (guess == a);
        }
        m.update(a);
    }
    EXPECT_GT(predicted, 20u);
    EXPECT_EQ(correct, predicted); // deterministic successors
}

TEST(Markov, NoPredictionWithoutHistory)
{
    MarkovPredictor m(64, 4);
    uint64_t v;
    EXPECT_FALSE(m.predict(v));
    m.update(0x10);
    EXPECT_FALSE(m.predict(v)); // successor of 0x10 still unknown
}

TEST(Markov, TagMissGatesCoverage)
{
    MarkovPredictor m(64, 4);
    m.update(0x10);
    m.update(0x20); // successor(0x10) = 0x20
    m.update(0x999); // last = 0x999, never seen as a tag
    uint64_t v;
    EXPECT_FALSE(m.predict(v));
}

// ---------------------------------------------------------- confidence

TEST(Confidence, PaperPolicyGating)
{
    ConfidenceTable c;
    EXPECT_FALSE(c.confident(pcA));
    c.train(pcA, true);  // 2
    EXPECT_FALSE(c.confident(pcA));
    c.train(pcA, true);  // 4
    EXPECT_TRUE(c.confident(pcA));
    c.train(pcA, false); // 3
    EXPECT_FALSE(c.confident(pcA));
    c.train(pcA, true);  // 5
    EXPECT_TRUE(c.confident(pcA));
}

TEST(Confidence, SaturatesAtSeven)
{
    ConfidenceTable c;
    for (int i = 0; i < 10; ++i)
        c.train(pcA, true);
    // Three misses from saturation (7) leave the counter at 4: still
    // confident; a fourth drops below threshold.
    c.train(pcA, false);
    c.train(pcA, false);
    c.train(pcA, false);
    EXPECT_TRUE(c.confident(pcA));
    c.train(pcA, false);
    EXPECT_FALSE(c.confident(pcA));
}

// --------------------------------------------------------------- table

TEST(Table, UnlimitedModeIsolatesPcs)
{
    PcIndexedTable<int> t(0);
    t.lookup(pcA) = 1;
    t.lookup(pcB) = 2;
    EXPECT_EQ(*t.probe(pcA), 1);
    EXPECT_EQ(*t.probe(pcB), 2);
    EXPECT_EQ(t.conflicts(), 0u);
}

TEST(Table, UnlimitedProbeMissingReturnsNull)
{
    PcIndexedTable<int> t(0);
    EXPECT_EQ(t.probe(0x1234), nullptr);
}

TEST(Table, LimitedModeAliases)
{
    PcIndexedTable<int> t(4); // indices from (pc >> 2) & 3
    uint64_t pc1 = 0x400000;
    uint64_t pc2 = 0x400010; // same index mod 4
    t.lookup(pc1) = 7;
    EXPECT_EQ(t.conflicts(), 0u);
    t.lookup(pc2);
    EXPECT_EQ(t.conflicts(), 1u);
    EXPECT_GT(t.conflictRate(), 0.0);
}

TEST(Table, LimitedModeDistinctIndicesNoConflict)
{
    PcIndexedTable<int> t(4);
    t.lookup(0x400000);
    t.lookup(0x400004);
    t.lookup(0x400008);
    EXPECT_EQ(t.conflicts(), 0u);
}

TEST(TableDeath, NonPowerOfTwoRejected)
{
    EXPECT_DEATH(PcIndexedTable<int> t(1000), "power of two");
}

} // namespace
} // namespace predictors
} // namespace gdiff
