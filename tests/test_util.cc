/**
 * @file
 * Unit tests for src/util: formatting, RNG, bit helpers, saturating
 * counters, and the ring history that backs the GVQ.
 */

#include <gtest/gtest.h>

#include <set>

#include "util/bits.hh"
#include "util/json.hh"
#include "util/logging.hh"
#include "util/random.hh"
#include "util/ring_history.hh"
#include "util/sat_counter.hh"

namespace gdiff {
namespace {

// ------------------------------------------------------------ logging

TEST(Logging, FormatString)
{
    EXPECT_EQ(formatString("plain"), "plain");
    EXPECT_EQ(formatString("%d + %d = %d", 1, 2, 3), "1 + 2 = 3");
    EXPECT_EQ(formatString("%s/%s", "a", "b"), "a/b");
}

TEST(Logging, QuietToggle)
{
    setQuietLogging(true);
    EXPECT_TRUE(quietLogging());
    setQuietLogging(false);
    EXPECT_FALSE(quietLogging());
}

TEST(Logging, AssertMacroPassesOnTrue)
{
    GDIFF_ASSERT(1 + 1 == 2, "must not fire");
    SUCCEED();
}

TEST(LoggingDeath, AssertMacroAborts)
{
    EXPECT_DEATH(GDIFF_ASSERT(false, "boom %d", 42), "boom 42");
}

TEST(LoggingDeath, PanicAborts)
{
    EXPECT_DEATH(panic("panic message %s", "x"), "panic message x");
}

// --------------------------------------------------------------- bits

TEST(Bits, PowerOfTwo)
{
    EXPECT_TRUE(isPowerOfTwo(1));
    EXPECT_TRUE(isPowerOfTwo(2));
    EXPECT_TRUE(isPowerOfTwo(1ull << 40));
    EXPECT_FALSE(isPowerOfTwo(0));
    EXPECT_FALSE(isPowerOfTwo(3));
    EXPECT_FALSE(isPowerOfTwo(12));
}

TEST(Bits, Logs)
{
    EXPECT_EQ(floorLog2(1), 0u);
    EXPECT_EQ(floorLog2(2), 1u);
    EXPECT_EQ(floorLog2(3), 1u);
    EXPECT_EQ(floorLog2(1024), 10u);
    EXPECT_EQ(ceilLog2(1024), 10u);
    EXPECT_EQ(ceilLog2(1025), 11u);
}

TEST(Bits, Mask)
{
    EXPECT_EQ(mask(0), 0u);
    EXPECT_EQ(mask(1), 1u);
    EXPECT_EQ(mask(8), 0xffull);
    EXPECT_EQ(mask(64), ~uint64_t(0));
}

TEST(Bits, Mix64Distributes)
{
    // Consecutive keys must land in different low-bit buckets most of
    // the time (this is what keeps tagless tables from pathological
    // collisions with hashed indexing).
    std::set<uint64_t> buckets;
    for (uint64_t i = 0; i < 64; ++i)
        buckets.insert(mix64(i) & 0x3f);
    EXPECT_GE(buckets.size(), 32u);
}

TEST(Bits, FoldPreservesLowEntropy)
{
    // Folding must depend on high bits too.
    EXPECT_NE(foldBits(0x1234567800000000ull, 16),
              foldBits(0xabcdef0000000000ull, 16));
    // Folding to >= 64 bits is the identity.
    EXPECT_EQ(foldBits(42, 64), 42u);
}

// ---------------------------------------------------------------- rng

TEST(Random, Deterministic)
{
    Xorshift64Star a(7), b(7);
    for (int i = 0; i < 100; ++i)
        EXPECT_EQ(a.next(), b.next());
}

TEST(Random, ZeroSeedRemapped)
{
    Xorshift64Star z(0);
    EXPECT_NE(z.next(), 0u);
}

TEST(Random, BelowInRange)
{
    Xorshift64Star r(11);
    for (int i = 0; i < 1000; ++i)
        EXPECT_LT(r.below(17), 17u);
}

TEST(Random, InRangeInclusive)
{
    Xorshift64Star r(13);
    bool saw_lo = false, saw_hi = false;
    for (int i = 0; i < 4000; ++i) {
        int64_t v = r.inRange(-3, 3);
        EXPECT_GE(v, -3);
        EXPECT_LE(v, 3);
        saw_lo |= (v == -3);
        saw_hi |= (v == 3);
    }
    EXPECT_TRUE(saw_lo);
    EXPECT_TRUE(saw_hi);
}

TEST(Random, ChancePercentExtremes)
{
    Xorshift64Star r(17);
    for (int i = 0; i < 100; ++i) {
        EXPECT_FALSE(r.chancePercent(0));
        EXPECT_TRUE(r.chancePercent(100));
    }
}

TEST(Random, ChancePercentRoughlyCalibrated)
{
    Xorshift64Star r(19);
    int hits = 0;
    for (int i = 0; i < 10000; ++i)
        hits += r.chancePercent(25);
    EXPECT_NEAR(hits, 2500, 200);
}

TEST(Random, ForkDecorrelates)
{
    Xorshift64Star a(23);
    Xorshift64Star b = a.fork();
    int same = 0;
    for (int i = 0; i < 64; ++i)
        same += (a.next() == b.next());
    EXPECT_EQ(same, 0);
}

// -------------------------------------------------------- sat counter

TEST(SatCounter, SaturatesHigh)
{
    SatCounter c(2, 1, 1, 0); // max 3
    for (int i = 0; i < 10; ++i)
        c.increment();
    EXPECT_EQ(c.value(), 3u);
}

TEST(SatCounter, SaturatesLow)
{
    SatCounter c(2, 1, 1, 3);
    for (int i = 0; i < 10; ++i)
        c.decrement();
    EXPECT_EQ(c.value(), 0u);
}

TEST(SatCounter, PaperPolicy)
{
    // 3-bit, +2/-1, confident at >= 4 (paper §4).
    SatCounter c = makePaperConfidenceCounter();
    EXPECT_EQ(c.max(), 7u);
    c.increment(); // 2
    EXPECT_FALSE(c.atLeast(paperConfidenceThreshold));
    c.increment(); // 4
    EXPECT_TRUE(c.atLeast(paperConfidenceThreshold));
    c.decrement(); // 3
    EXPECT_FALSE(c.atLeast(paperConfidenceThreshold));
    c.increment(); // 5
    c.increment(); // 7 (saturated)
    c.increment();
    EXPECT_EQ(c.value(), 7u);
}

TEST(SatCounter, InitialClamped)
{
    SatCounter c(2, 1, 1, 99);
    EXPECT_EQ(c.value(), 3u);
}

// ------------------------------------------------------- ring history

TEST(RingHistory, MostRecentFirst)
{
    RingHistory<int> h(4);
    h.push(1);
    h.push(2);
    h.push(3);
    EXPECT_EQ(h[0], 3);
    EXPECT_EQ(h[1], 2);
    EXPECT_EQ(h[2], 1);
    EXPECT_EQ(h.size(), 3u);
}

TEST(RingHistory, EvictsOldest)
{
    RingHistory<int> h(3);
    for (int i = 1; i <= 5; ++i)
        h.push(i);
    EXPECT_EQ(h.size(), 3u);
    EXPECT_EQ(h[0], 5);
    EXPECT_EQ(h[1], 4);
    EXPECT_EQ(h[2], 3);
}

TEST(RingHistory, OutOfRangeReadsDefault)
{
    RingHistory<int> h(4);
    h.push(9);
    EXPECT_EQ(h[1], 0);
    EXPECT_EQ(h[100], 0);
}

TEST(RingHistory, ReplaceInWindow)
{
    RingHistory<int> h(4);
    h.push(1);
    h.push(2);
    h.push(3);
    EXPECT_TRUE(h.replace(1, 20));
    EXPECT_EQ(h[1], 20);
    EXPECT_EQ(h[0], 3);
    EXPECT_FALSE(h.replace(5, 99));
}

TEST(RingHistory, TotalPushesMonotonic)
{
    RingHistory<int> h(2);
    EXPECT_EQ(h.totalPushes(), 0u);
    for (int i = 0; i < 7; ++i)
        h.push(i);
    EXPECT_EQ(h.totalPushes(), 7u);
    EXPECT_EQ(h.size(), 2u);
}

TEST(RingHistory, ClearEmptiesWindow)
{
    RingHistory<int> h(3);
    h.push(1);
    h.push(2);
    h.clear();
    EXPECT_TRUE(h.empty());
    EXPECT_EQ(h[0], 0);
    h.push(5);
    EXPECT_EQ(h[0], 5);
}

// --------------------------------------------------------------- json
//
// Property/fuzz coverage for the reader that now sits on the snapshot
// and daemon read paths: escape→parse is the identity on arbitrary
// byte strings, the depth cap holds exactly, and truncated or mangled
// documents are rejected (never crash, never accept).

TEST(JsonProperty, EscapeParseRoundTripsArbitraryBytes)
{
    Xorshift64Star rng(0x1234);
    for (int trial = 0; trial < 200; ++trial) {
        std::string s;
        size_t len = rng.below(64);
        for (size_t i = 0; i < len; ++i)
            s.push_back(static_cast<char>(rng.below(256)));
        std::string doc = "\"" + json::escape(s) + "\"";
        json::Value v;
        std::string error;
        ASSERT_TRUE(json::parse(doc, v, &error))
            << error << " doc=" << doc;
        ASSERT_TRUE(v.isString());
        EXPECT_EQ(v.str, s);
    }
}

TEST(JsonProperty, EscapedKeysSurviveAnObjectRoundTrip)
{
    std::string key = "we\"ird\\key\n\t";
    std::string doc =
        "{\"" + json::escape(key) + "\": [1, 2.5, -3e2]}";
    json::Value v;
    ASSERT_TRUE(json::parse(doc, v));
    const json::Value *member = v.find(key);
    ASSERT_NE(member, nullptr);
    ASSERT_TRUE(member->isArray());
    ASSERT_EQ(member->array.size(), 3u);
    EXPECT_EQ(member->array[2].asNumber(), -300.0);
}

TEST(JsonProperty, DepthCapIsExact)
{
    auto nested = [](int depth) {
        std::string doc(depth, '[');
        doc += "1";
        doc.append(depth, ']');
        return doc;
    };
    json::Value v;
    // 64 nested arrays parse; 65 trip the cap.
    EXPECT_TRUE(json::parse(nested(64), v));
    std::string error;
    EXPECT_FALSE(json::parse(nested(65), v, &error));
    EXPECT_NE(error.find("deep"), std::string::npos);
}

TEST(JsonProperty, EveryTruncationOfAnObjectDocumentIsRejected)
{
    const std::string doc =
        "{\"a\": [1, 2.5e-3], \"b\": \"x\\ny\", \"c\": null, "
        "\"d\": true}";
    json::Value v;
    ASSERT_TRUE(json::parse(doc, v));
    for (size_t cut = 0; cut < doc.size(); ++cut)
        EXPECT_FALSE(json::parse(doc.substr(0, cut), v))
            << "prefix of length " << cut << " was accepted";
    // ...and trailing garbage after the complete document is too.
    EXPECT_FALSE(json::parse(doc + "x", v));
    EXPECT_FALSE(json::parse(doc + " {}", v));
}

TEST(JsonFuzz, RandomMutationsNeverCrashTheParser)
{
    const std::string seedDoc =
        "{\"format\":\"gdiff-snapshot\",\"version\":1,"
        "\"jobs\":[{\"ipc\":1.25,\"ok\":true},null]}";
    Xorshift64Star rng(99);
    json::Value v;
    size_t accepted = 0;
    for (int trial = 0; trial < 500; ++trial) {
        std::string doc = seedDoc;
        // 1-4 random byte edits: overwrite, delete, or insert.
        unsigned edits = 1 + static_cast<unsigned>(rng.below(4));
        for (unsigned e = 0; e < edits && !doc.empty(); ++e) {
            size_t pos = rng.below(doc.size());
            switch (rng.below(3)) {
            case 0:
                doc[pos] = static_cast<char>(rng.below(256));
                break;
            case 1:
                doc.erase(pos, 1);
                break;
            default:
                doc.insert(pos, 1,
                           static_cast<char>(rng.below(256)));
                break;
            }
        }
        if (json::parse(doc, v))
            ++accepted; // fine — some mutations stay valid JSON
    }
    // The parser survived all 500; most mutants must be rejected.
    EXPECT_LT(accepted, 250u);
}

TEST(JsonFuzz, RandomGarbageNeverCrashesTheParser)
{
    Xorshift64Star rng(7);
    json::Value v;
    for (int trial = 0; trial < 300; ++trial) {
        std::string doc;
        size_t len = rng.below(48);
        for (size_t i = 0; i < len; ++i)
            doc.push_back(static_cast<char>(rng.below(256)));
        std::string error;
        if (!json::parse(doc, v, &error))
            EXPECT_FALSE(error.empty());
    }
}

} // namespace
} // namespace gdiff
