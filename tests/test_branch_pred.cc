/**
 * @file
 * Direct unit tests for the front-end branch predictor: gshare
 * saturating-counter training, history-driven pattern learning,
 * aliasing behaviour pinned by a from-the-spec reference model, and
 * the call/return RAS.
 */

#include <gtest/gtest.h>

#include <cstdint>
#include <vector>

#include "pipeline/branch_pred.hh"
#include "util/bits.hh"
#include "util/random.hh"
#include "workload/trace.hh"

namespace gdiff {
namespace pipeline {
namespace {

workload::TraceRecord
condBranch(uint64_t pc, bool taken)
{
    workload::TraceRecord r;
    r.inst.op = isa::Opcode::Beq;
    r.pc = pc;
    r.nextPc = taken ? pc + 64 : pc + isa::instBytes;
    r.taken = taken;
    return r;
}

TEST(GshareTest, SaturatingCountersTrainOnAlwaysTaken)
{
    BranchPredictor bp((PipelineConfig()));
    // Counters power up weakly-not-taken (1), so the very first
    // always-taken branch mispredicts...
    EXPECT_FALSE(bp.predictAndTrain(condBranch(0x400100, true)));
    // ...and once the history register saturates at all-ones the
    // index is stable and the counter trains to strongly-taken:
    // the tail of the run must be misprediction-free.
    for (int i = 0; i < 100; ++i)
        bp.predictAndTrain(condBranch(0x400100, true));
    for (int i = 0; i < 100; ++i) {
        EXPECT_TRUE(bp.predictAndTrain(condBranch(0x400100, true)))
            << "iteration " << i;
    }
}

TEST(GshareTest, AlwaysNotTakenIsPredictedFromTheStart)
{
    // Weakly-not-taken initialization plus a zero history (shifting
    // in zeros keeps the index fixed) means a never-taken branch
    // never mispredicts.
    BranchPredictor bp((PipelineConfig()));
    for (int i = 0; i < 100; ++i) {
        EXPECT_TRUE(bp.predictAndTrain(condBranch(0x400200, false)))
            << "iteration " << i;
    }
}

TEST(GshareTest, HistoryDisambiguatesAlternatingPattern)
{
    // T,N,T,N,... defeats a per-PC bimodal counter (it hovers
    // between states) but is trivial for gshare: the two history
    // contexts map to two different counters. The tail of the run
    // must be perfect.
    BranchPredictor bp((PipelineConfig()));
    for (int i = 0; i < 200; ++i)
        bp.predictAndTrain(condBranch(0x400300, i % 2 == 0));
    for (int i = 200; i < 400; ++i) {
        EXPECT_TRUE(
            bp.predictAndTrain(condBranch(0x400300, i % 2 == 0)))
            << "iteration " << i;
    }
}

TEST(GshareTest, MatchesReferenceModelUnderAliasing)
{
    // A tiny 4-bit gshare (16 counters) shared by 32 branch sites
    // aliases heavily; the production predictor must still track the
    // documented algorithm outcome-for-outcome. The reference below
    // is a straight transliteration of the spec: idx =
    // (mix64(pc>>2) ^ history) & mask(bits), 2-bit saturating
    // counters starting weakly-not-taken, history = shift-in-taken.
    PipelineConfig cfg;
    cfg.gshareHistoryBits = 4;
    BranchPredictor bp(cfg);

    std::vector<uint8_t> ref_counters(1u << 4, 1);
    uint64_t ref_history = 0;
    auto ref_predict_and_train = [&](uint64_t pc, bool taken) {
        size_t idx = static_cast<size_t>(
            (mix64(pc >> 2) ^ ref_history) & mask(4));
        bool predict_taken = ref_counters[idx] >= 2;
        if (taken) {
            if (ref_counters[idx] < 3)
                ++ref_counters[idx];
        } else {
            if (ref_counters[idx] > 0)
                --ref_counters[idx];
        }
        ref_history = ((ref_history << 1) | (taken ? 1 : 0)) &
                      mask(4);
        return predict_taken == taken;
    };

    Xorshift64Star rng(2026);
    for (int i = 0; i < 2000; ++i) {
        uint64_t pc = 0x400000 + 4 * rng.below(32);
        // Per-site bias keyed off the PC so sites differ.
        bool taken = rng.below(100) < 20 + (pc >> 2) % 60;
        EXPECT_EQ(bp.predictAndTrain(condBranch(pc, taken)),
                  ref_predict_and_train(pc, taken))
            << "diverged at branch " << i;
    }
}

TEST(RasTest, CallReturnPairsPredictReturns)
{
    BranchPredictor bp((PipelineConfig()));

    workload::TraceRecord call;
    call.inst.op = isa::Opcode::Jal;
    call.pc = 0x400400;
    call.nextPc = 0x400800; // the callee
    EXPECT_TRUE(bp.predictAndTrain(call));

    workload::TraceRecord ret;
    ret.inst.op = isa::Opcode::Jr;
    ret.pc = 0x400810;
    ret.nextPc = call.pc + isa::instBytes; // return site
    EXPECT_TRUE(bp.predictAndTrain(ret));

    // A second return with nothing on the stack cannot be predicted.
    EXPECT_FALSE(bp.predictAndTrain(ret));
}

TEST(RasTest, MismatchedReturnTargetMispredicts)
{
    BranchPredictor bp((PipelineConfig()));
    workload::TraceRecord call;
    call.inst.op = isa::Opcode::Jal;
    call.pc = 0x400400;
    call.nextPc = 0x400800;
    bp.predictAndTrain(call);

    workload::TraceRecord ret;
    ret.inst.op = isa::Opcode::Jr;
    ret.pc = 0x400810;
    ret.nextPc = 0x999999; // not the pushed return address
    EXPECT_FALSE(bp.predictAndTrain(ret));
}

TEST(BtbTest, IndirectCallLearnsLastTarget)
{
    BranchPredictor bp((PipelineConfig()));
    workload::TraceRecord jalr;
    jalr.inst.op = isa::Opcode::Jalr;
    jalr.pc = 0x400500;
    jalr.nextPc = 0x401000;
    // Cold BTB: first encounter mispredicts, repeats hit.
    EXPECT_FALSE(bp.predictAndTrain(jalr));
    EXPECT_TRUE(bp.predictAndTrain(jalr));
    // Target change: one miss, then learned again.
    jalr.nextPc = 0x402000;
    EXPECT_FALSE(bp.predictAndTrain(jalr));
    EXPECT_TRUE(bp.predictAndTrain(jalr));
}

} // namespace
} // namespace pipeline
} // namespace gdiff
