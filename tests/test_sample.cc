/**
 * @file
 * Unit battery for the sampled simulator (src/sample/): estimator
 * known-answer cases, Neyman allocation (including the remainder-loop
 * regression), t-quantile table, window-grid geometry at the trace
 * edges, stratum profiling over synthetic streams, SkipTraceSource
 * equivalence across chunk boundaries, the degrade-to-full path, and
 * determinism of whole sampled jobs. The statistical validation
 * against golden full runs lives in test_sample_stats.cc (slow).
 */

#include <gtest/gtest.h>

#include <array>
#include <cmath>
#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "predictors/stride.hh"
#include "runner/runner.hh"
#include "sample/estimator.hh"
#include "sample/sample.hh"
#include "sim/profile.hh"
#include "workload/trace.hh"
#include "workload/trace_cache.hh"
#include "workload/trace_io.hh"

using namespace gdiff;
using namespace gdiff::sample;

namespace {

// ------------------------------------------------------- estimators

TEST(StratifiedEstimate, SingleStratumKnownAnswer)
{
    // Plain SRS: values {1,2,3} of 10 candidate windows. mean = 2,
    // S^2 = 1, fpc = 1 - 3/10, Var = 0.7 * 1/3.
    StratumSamples h;
    h.weight = 10.0;
    h.population = 10;
    h.values = {1.0, 2.0, 3.0};
    h.weights = {1.0, 1.0, 1.0};
    MetricEstimate e = stratifiedEstimate({h}, 2.0);
    EXPECT_DOUBLE_EQ(e.mean, 2.0);
    EXPECT_DOUBLE_EQ(e.stdError, std::sqrt(0.7 / 3.0));
    EXPECT_DOUBLE_EQ(e.ciLo, 2.0 - 2.0 * e.stdError);
    EXPECT_DOUBLE_EQ(e.ciHi, 2.0 + 2.0 * e.stdError);
}

TEST(StratifiedEstimate, MeanIsRecordWeighted)
{
    // A short end-of-trace window must count by its records: values
    // {1,3} with weights {3,1} average to 1.5, not 2.
    StratumSamples h;
    h.weight = 4.0;
    h.population = 4;
    h.values = {1.0, 3.0};
    h.weights = {3.0, 1.0};
    MetricEstimate e = stratifiedEstimate({h});
    EXPECT_DOUBLE_EQ(e.mean, 1.5);
}

TEST(StratifiedEstimate, FullyMeasuredStratumHasZeroWidth)
{
    // n == N: the finite-population correction zeroes the variance —
    // there is nothing left unmeasured to be uncertain about.
    StratumSamples h;
    h.weight = 2.0;
    h.population = 2;
    h.values = {1.0, 5.0};
    h.weights = {1.0, 1.0};
    MetricEstimate e = stratifiedEstimate({h});
    EXPECT_DOUBLE_EQ(e.mean, 3.0);
    EXPECT_DOUBLE_EQ(e.stdError, 0.0);
    EXPECT_DOUBLE_EQ(e.ciLo, e.ciHi);
}

TEST(StratifiedEstimate, SingleWindowStratumContributesZeroVariance)
{
    // One measured window cannot estimate its own spread; the
    // documented behaviour is zero contribution (intervals understate).
    StratumSamples h;
    h.weight = 100.0;
    h.population = 100;
    h.values = {7.0};
    h.weights = {1.0};
    MetricEstimate e = stratifiedEstimate({h});
    EXPECT_DOUBLE_EQ(e.mean, 7.0);
    EXPECT_DOUBLE_EQ(e.stdError, 0.0);
}

TEST(StratifiedEstimate, TwoStrataCombineByWeight)
{
    // Strata of weight 30/10: mean = 0.75*2 + 0.25*6 = 3. Variance
    // sums share^2 * fpc * S^2/n per stratum.
    StratumSamples a, b;
    a.weight = 30.0;
    a.population = 30;
    a.values = {1.0, 2.0, 3.0};
    a.weights = {1.0, 1.0, 1.0};
    b.weight = 10.0;
    b.population = 10;
    b.values = {5.0, 7.0};
    b.weights = {1.0, 1.0};
    MetricEstimate e = stratifiedEstimate({a, b}, 1.0);
    EXPECT_DOUBLE_EQ(e.mean, 3.0);
    double varA = 0.75 * 0.75 * (1.0 - 3.0 / 30.0) * (1.0 / 3.0);
    double varB = 0.25 * 0.25 * (1.0 - 2.0 / 10.0) * (2.0 / 2.0);
    EXPECT_DOUBLE_EQ(e.stdError, std::sqrt(varA + varB));
}

TEST(StratifiedEstimateDeath, RejectsBrokenStrata)
{
    EXPECT_DEATH(stratifiedEstimate({}), "no strata");

    StratumSamples empty;
    empty.weight = 1.0;
    empty.population = 1;
    EXPECT_DEATH(stratifiedEstimate({empty}), "no measured windows");

    StratumSamples weightless;
    weightless.population = 1;
    weightless.values = {1.0};
    weightless.weights = {1.0};
    // Alone it trips the total-weight check; next to a weighted
    // stratum it trips the per-stratum one.
    EXPECT_DEATH(stratifiedEstimate({weightless}),
                 "zero total weight");
    StratumSamples weighted;
    weighted.weight = 1.0;
    weighted.population = 1;
    weighted.values = {2.0};
    weighted.weights = {1.0};
    EXPECT_DEATH(stratifiedEstimate({weighted, weightless}),
                 "stratum 1 has zero weight");

    StratumSamples overfull;
    overfull.weight = 1.0;
    overfull.population = 1;
    overfull.values = {1.0, 2.0};
    overfull.weights = {1.0, 1.0};
    EXPECT_DEATH(stratifiedEstimate({overfull}),
                 "more windows than exist");
}

TEST(InvertEstimate, SwapsEndpointsAndScalesError)
{
    MetricEstimate cpi;
    cpi.mean = 2.0;
    cpi.stdError = 0.1;
    cpi.ciLo = 1.8;
    cpi.ciHi = 2.2;
    MetricEstimate ipc = invertEstimate(cpi);
    EXPECT_DOUBLE_EQ(ipc.mean, 0.5);
    // Delta method: se' = se / mean^2.
    EXPECT_DOUBLE_EQ(ipc.stdError, 0.1 / 4.0);
    // 1/x is decreasing, so lo comes from hi and vice versa.
    EXPECT_DOUBLE_EQ(ipc.ciLo, 1.0 / 2.2);
    EXPECT_DOUBLE_EQ(ipc.ciHi, 1.0 / 1.8);
    EXPECT_LT(ipc.ciLo, ipc.mean);
    EXPECT_GT(ipc.ciHi, ipc.mean);
}

TEST(InvertEstimateDeath, RejectsNonPositiveInterval)
{
    MetricEstimate e;
    e.mean = 0.5;
    e.ciLo = -0.1; // interval crosses zero: inversion is meaningless
    e.ciHi = 1.1;
    EXPECT_DEATH(invertEstimate(e), "non-positive");
}

TEST(RatioEstimate, CombinesRelativeErrorsInQuadrature)
{
    MetricEstimate num, den;
    num.mean = 3.0;
    num.stdError = 0.3; // 10% relative
    den.mean = 2.0;
    den.stdError = 0.2; // 10% relative
    MetricEstimate r = ratioEstimate(num, den, 2.0);
    EXPECT_DOUBLE_EQ(r.mean, 1.5);
    EXPECT_DOUBLE_EQ(r.stdError, 1.5 * std::sqrt(0.01 + 0.01));
    EXPECT_DOUBLE_EQ(r.ciLo, r.mean - 2.0 * r.stdError);
    EXPECT_DOUBLE_EQ(r.ciHi, r.mean + 2.0 * r.stdError);
}

// ------------------------------------------------------- t quantile

TEST(TQuantile, ExactAtTabulatedDf)
{
    EXPECT_DOUBLE_EQ(tQuantile975(1), 12.706);
    EXPECT_DOUBLE_EQ(tQuantile975(4), 2.776);
    EXPECT_DOUBLE_EQ(tQuantile975(10), 2.228);
    EXPECT_DOUBLE_EQ(tQuantile975(30), 2.042);
    EXPECT_DOUBLE_EQ(tQuantile975(120), 1.980);
}

TEST(TQuantile, MonotoneAndBoundedByNormal)
{
    double prev = tQuantile975(1);
    for (uint64_t df = 2; df <= 300; ++df) {
        double t = tQuantile975(df);
        EXPECT_LE(t, prev) << "not monotone at df=" << df;
        EXPECT_GE(t, kZ95) << "below the normal quantile at df=" << df;
        prev = t;
    }
    EXPECT_DOUBLE_EQ(tQuantile975(240), kZ95);
    EXPECT_DOUBLE_EQ(tQuantile975(100'000), kZ95);
    // df 0 clamps to the df=1 value, never something tighter.
    EXPECT_DOUBLE_EQ(tQuantile975(0), 12.706);
}

TEST(TQuantile, InterpolatesBetweenKnots)
{
    // df=13 lies between the 12 and 15 knots; the interpolant must
    // stay inside them.
    double t = tQuantile975(13);
    EXPECT_LT(t, tQuantile975(12));
    EXPECT_GT(t, tQuantile975(15));
    // Against the true value t_{0.975,13} = 2.160: within ~0.5%.
    EXPECT_NEAR(t, 2.160, 0.011);
}

// ------------------------------------------------- Neyman allocation

TEST(NeymanAllocate, ProportionalToSpread)
{
    std::vector<uint64_t> give = neymanAllocate(
        {3.0, 1.0}, {0, 0}, {100, 100}, 4);
    EXPECT_EQ(give, (std::vector<uint64_t>{3, 1}));
}

TEST(NeymanAllocate, RemainderIsDeterministicLowestIndex)
{
    // 4 windows over three equal strata: floors give {1,1,1}, and the
    // leftover goes to the lowest index among equal gaps.
    std::vector<uint64_t> give = neymanAllocate(
        {1.0, 1.0, 1.0}, {0, 0, 0}, {10, 10, 10}, 4);
    EXPECT_EQ(give, (std::vector<uint64_t>{2, 1, 1}));
}

TEST(NeymanAllocate, ZeroExtraGivesNothing)
{
    std::vector<uint64_t> give =
        neymanAllocate({1.0, 2.0}, {1, 1}, {5, 5}, 0);
    EXPECT_EQ(give, (std::vector<uint64_t>{0, 0}));
}

TEST(NeymanAllocate, ZeroSpreadFallsBackToRoom)
{
    // A variance-free pilot still has to spread the budget; with no
    // windows measured yet the room-proportional fallback reduces to
    // stratum size.
    std::vector<uint64_t> give = neymanAllocate(
        {0.0, 0.0}, {0, 0}, {30, 10}, 4);
    EXPECT_EQ(give, (std::vector<uint64_t>{3, 1}));
}

TEST(NeymanAllocate, ZeroSpreadFallbackWeighsRemainingRoom)
{
    // Stratum 0's pilot already took 2 of its 4 windows, so the
    // fallback must weight by remaining room {2, 4}, not capacity
    // {4, 4} — otherwise the already-covered stratum is over-targeted
    // and the remainder loop has to redistribute the clamped excess.
    std::vector<uint64_t> give = neymanAllocate(
        {0.0, 0.0}, {2, 0}, {4, 4}, 4);
    EXPECT_EQ(give, (std::vector<uint64_t>{1, 3}));
}

TEST(NeymanAllocate, CapacityCapsAndSpillsToOthers)
{
    // Stratum 0 wants everything but only has room for 2; the rest
    // must land in stratum 1 even though its ideal share is tiny.
    // Regression: the remainder loop once initialised its best-gap
    // search at -1.0, so strata more than one window past their
    // ideal share could never absorb leftover budget and the job
    // silently measured fewer windows than the budget paid for.
    std::vector<uint64_t> give = neymanAllocate(
        {100.0, 1.0}, {0, 0}, {2, 200}, 101);
    EXPECT_EQ(give[0], 2u);
    EXPECT_EQ(give[1], 99u);
}

TEST(NeymanAllocate, StopsWhenEveryStratumIsFull)
{
    std::vector<uint64_t> give = neymanAllocate(
        {1.0, 1.0}, {1, 1}, {2, 2}, 10);
    EXPECT_EQ(give, (std::vector<uint64_t>{1, 1}));
}

TEST(NeymanAllocateDeath, RejectsMismatchedVectors)
{
    EXPECT_DEATH(neymanAllocate({1.0}, {0, 0}, {1, 1}, 1),
                 "mismatched stratum vectors");
    EXPECT_DEATH(neymanAllocate({1.0}, {3}, {2}, 1), "over-measured");
}

// ---------------------------------------------------- window grid

TEST(WindowGrid, CountIsCeilOfRegionOverWindow)
{
    WindowGrid g = makeWindowGrid(0, 10'000, 4096);
    EXPECT_EQ(g.count(), 3u);
    WindowGrid exact = makeWindowGrid(0, 8192, 4096);
    EXPECT_EQ(exact.count(), 2u);
}

TEST(WindowGrid, LastWindowClippedAtRegionEnd)
{
    WindowGrid g = makeWindowGrid(0, 10'000, 4096);
    EXPECT_EQ(g.length(0), 4096u);
    EXPECT_EQ(g.length(1), 4096u);
    EXPECT_EQ(g.length(2), 10'000u - 2 * 4096u);
    EXPECT_EQ(g.start(2) + g.length(2), 10'000u);
}

TEST(WindowGrid, WarmupClippedAtTraceStart)
{
    // A job with no warmup region: window 0 starts at record 0 and
    // has nothing before it to warm with.
    WindowGrid cold = makeWindowGrid(0, 100'000, 4096);
    EXPECT_EQ(cold.warmup(0), 0u);
    EXPECT_EQ(cold.warmup(1), 4096u);
    // Far from the edge the full kWarmupWindows lengths are used.
    EXPECT_EQ(cold.warmup(10), kWarmupWindows * 4096u);

    // With a 1000-record job warmup, window 0 can warm over exactly
    // that prefix — never records before the trace begins.
    WindowGrid warm = makeWindowGrid(1000, 100'000, 4096);
    EXPECT_EQ(warm.warmup(0), 1000u);
    EXPECT_EQ(warm.start(0), 1000u);
}

TEST(WindowGrid, FunctionalWarmupFillsHistoryBeforeDetailed)
{
    // Functional warmup takes whatever stream exists between the
    // trace start and the detailed warmup, capped at the absolute
    // kFunctionalWarmup record budget.
    WindowGrid g = makeWindowGrid(0, 1'000'000, 4096);
    EXPECT_EQ(g.functionalWarmup(0), 0u);
    // Window 2 starts at 8192 with 8192 of detailed warmup: no
    // history left to warm functionally.
    EXPECT_EQ(g.functionalWarmup(2), 0u);
    // Window 8: 32768 - 16384 detailed = 16384 functional.
    EXPECT_EQ(g.functionalWarmup(8),
              8 * 4096u - kWarmupWindows * 4096u);
    // Deep into the trace the absolute cap applies.
    EXPECT_EQ(g.functionalWarmup(100), kFunctionalWarmup);
    // Geometry never reaches before the trace: skip offset
    // start - warmup - functionalWarmup stays non-negative.
    for (uint64_t w : {0u, 1u, 2u, 5u, 8u, 30u, 100u})
        EXPECT_GE(g.start(w), g.warmup(w) + g.functionalWarmup(w));
}

TEST(WindowGridDeath, RejectsDegenerateGeometry)
{
    EXPECT_DEATH(makeWindowGrid(0, 0, 4096), "degenerate window grid");
    EXPECT_DEATH(makeWindowGrid(0, 4096, 0), "degenerate window grid");
}

// ----------------------------------------------- synthetic streams

/** Replays caller-provided value/pc columns. Every record is a
 * value-producing ALU op, so the stream also drives the profile
 * runner (the profiling pass itself ignores flags). */
class ColumnSource : public workload::TraceSource
{
  public:
    ColumnSource(std::vector<int64_t> values, uint64_t pcStride = 4)
        : values(std::move(values)), pcStride(pcStride)
    {
    }

    bool
    fill(workload::TraceChunk &chunk) override
    {
        chunk.clear();
        while (!chunk.full() && pos < values.size()) {
            workload::TraceRecord r;
            r.inst.op = isa::Opcode::Addi;
            r.inst.rd = isa::reg::t0;
            r.seq = pos;
            r.pc = pcStride * pos;
            r.nextPc = r.pc + pcStride;
            r.value = values[pos];
            chunk.push(r);
            ++pos;
        }
        return !chunk.empty();
    }

  private:
    std::vector<int64_t> values;
    uint64_t pcStride;
    size_t pos = 0;
};

/** value[i] with no periodic structure (xorshift scramble of i). */
int64_t
noise(uint64_t i)
{
    uint64_t z = i * 0x9e3779b97f4a7c15ull + 1;
    z ^= z >> 29;
    z *= 0xbf58476d1ce4e5b9ull;
    z ^= z >> 32;
    return static_cast<int64_t>(z);
}

TEST(ProfileStrata, SamePhaseSameStratumKey)
{
    // Three 512-record windows: ramp, noise, ramp. The two ramp
    // windows must fingerprint identically and differently from the
    // noise window (a ramp has constant lag-L deltas, noise has no
    // period at all).
    const uint64_t W = 512;
    std::vector<int64_t> v;
    for (uint64_t i = 0; i < W; ++i)
        v.push_back(static_cast<int64_t>(7 * i));
    for (uint64_t i = 0; i < W; ++i)
        v.push_back(noise(i));
    for (uint64_t i = 0; i < W; ++i)
        v.push_back(static_cast<int64_t>(7 * i));

    ColumnSource src(v);
    WindowGrid grid = makeWindowGrid(0, 3 * W, W);
    std::vector<StratumKey> keys = profileStrata(src, grid);
    ASSERT_EQ(keys.size(), 3u);
    EXPECT_TRUE(keys[0] == keys[2]);
    EXPECT_FALSE(keys[0] == keys[1]);
    EXPECT_EQ(keys[1].valuePeriod, 1u); // noise: no period
    EXPECT_NE(keys[0].valuePeriod, 1u); // ramp: periodic deltas
}

TEST(ProfileStrata, WindowsSkipTheJobWarmupRegion)
{
    // measuredStart != 0: the fingerprint of window 0 must come from
    // records at the region start, not the trace start. Noise before
    // the region, ramp inside — window 0 must look like a ramp.
    const uint64_t W = 512;
    std::vector<int64_t> v;
    for (uint64_t i = 0; i < W; ++i)
        v.push_back(noise(i));
    for (uint64_t i = 0; i < W; ++i)
        v.push_back(static_cast<int64_t>(3 * i));
    ColumnSource src(v);
    WindowGrid grid = makeWindowGrid(W, W, W);
    std::vector<StratumKey> keys = profileStrata(src, grid);
    ASSERT_EQ(keys.size(), 1u);
    EXPECT_NE(keys[0].valuePeriod, 1u);
}

TEST(ProfileStrata, ShortStreamLeavesDefaultKeys)
{
    // The grid promises 4 windows but the stream ends after 2.5;
    // the windows past the end keep the default key instead of
    // crashing or inheriting a neighbour's.
    const uint64_t W = 512;
    std::vector<int64_t> v;
    for (uint64_t i = 0; i < 2 * W + W / 2; ++i)
        v.push_back(static_cast<int64_t>(5 * i));
    ColumnSource src(v);
    WindowGrid grid = makeWindowGrid(0, 4 * W, W);
    std::vector<StratumKey> keys = profileStrata(src, grid);
    ASSERT_EQ(keys.size(), 4u);
    EXPECT_NE(keys[0].valuePeriod, 1u);
    EXPECT_TRUE(keys[3] == StratumKey{});
}

// ------------------------- profile-window measurement alignment

TEST(SampledWindowAlignment, ProfileWarmupCoversTheFunctionalSpan)
{
    // One profile-mode window, set up exactly as measureWindow does:
    // skip start - warm - fwarm records, then replay with the
    // functional span folded into the untimed warmup. The stream is
    // noise everywhere except a perfect stride ramp over the window
    // [start, start + len), so the stride predictor can only score
    // ~1 if measurement covers exactly the window. Regression: the
    // skip once budgeted for a functional-warmup phase the profile
    // replay does not have, shifting measurement up to
    // kFunctionalWarmup records before the window — into the noise.
    const uint64_t W = 4096;
    WindowGrid grid = makeWindowGrid(80'000, W, W);
    const uint64_t start = grid.start(0);
    const uint64_t warm = grid.warmup(0);
    const uint64_t fwarm = grid.functionalWarmup(0);
    ASSERT_GT(fwarm, 0u);

    std::vector<int64_t> v(start + W);
    for (uint64_t i = 0; i < v.size(); ++i)
        v[i] = noise(i);
    for (uint64_t i = start; i < start + W; ++i)
        v[i] = static_cast<int64_t>(7 * (i - start));

    ColumnSource base(v, 0); // one pc: a single predictor site
    workload::SkipTraceSource src(base, start - warm - fwarm);

    predictors::StridePredictor stride(0);
    sim::ProfileConfig cfg;
    cfg.maxInstructions = W;
    cfg.warmupInstructions = fwarm + warm;
    cfg.allowLongWarmup = true;
    sim::ValueProfileRunner prof(cfg);
    prof.addPredictor(stride);
    prof.run(src);

    EXPECT_EQ(prof.measuredRecords(), W);
    EXPECT_GT(prof.results()[0].accuracyAll.value(), 0.99);
}

// ------------------------------------------------- SkipTraceSource

/** Collect (seq, pc, value) of every record @p src still yields. */
std::vector<std::array<uint64_t, 3>>
drain(workload::TraceSource &src)
{
    std::vector<std::array<uint64_t, 3>> out;
    auto scratch = std::make_unique<workload::TraceChunk>();
    const workload::TraceChunk *c;
    while ((c = src.fillRef(*scratch)) != nullptr)
        for (uint32_t i = 0; i < c->size; ++i)
            out.push_back({c->seq[i], c->pc[i],
                           static_cast<uint64_t>(c->value[i])});
    return out;
}

TEST(SkipTraceSource, EquivalentToDroppingThePrefix)
{
    // 2.5 chunks of records; skip offsets probe the start, both
    // sides of each 4096-record chunk boundary, a mid-chunk point,
    // and past the end of the stream.
    const uint64_t N = 2 * workload::TraceChunk::capacity + 2048;
    std::vector<int64_t> v;
    for (uint64_t i = 0; i < N; ++i)
        v.push_back(noise(i));

    const std::vector<uint64_t> offsets = {
        0, 1, 4095, 4096, 4097, 8191, 8192, 9000, N, N + 100};
    for (uint64_t skip : offsets) {
        ColumnSource ref(v);
        std::vector<std::array<uint64_t, 3>> expect = drain(ref);
        expect.erase(expect.begin(),
                     expect.begin() +
                         std::min<uint64_t>(skip, expect.size()));

        ColumnSource base(v);
        workload::SkipTraceSource skipped(base, skip);
        std::vector<std::array<uint64_t, 3>> got = drain(skipped);

        ASSERT_EQ(got.size(), expect.size()) << "skip=" << skip;
        EXPECT_EQ(got, expect) << "skip=" << skip;
    }
}

// -------------------------------------------- whole sampled jobs

runner::JobSpec
pipelineSpec()
{
    runner::JobSpec spec;
    spec.mode = runner::JobMode::Pipeline;
    spec.workload = "mcf";
    spec.scheme = "baseline";
    spec.order = 32;
    spec.tableEntries = 8192;
    spec.seed = 1;
    spec.instructions = 50'000;
    spec.warmup = 10'000;
    spec.sampleBudget = 20'000;
    spec.sampleWindow = 4096;
    spec.sampleSeed = 1;
    return spec;
}

TEST(SampledJob, BudgetCoveringRegionDegradesToFullRun)
{
    workload::TraceCache cache;
    runner::JobSpec spec = pipelineSpec();
    spec.sampleBudget = spec.instructions; // >= region: nothing to sample

    runner::JobSpec full = spec;
    full.sampleBudget = 0;
    runner::JobResult exact = runner::runJob(full, &cache);
    runner::JobResult got = runSampledJob(spec, &cache, 2);

    // Bit-identical to the full run, with zero-width intervals and
    // the sampled metadata marking the degenerate path.
    EXPECT_EQ(got.metric("ipc"), exact.metric("ipc"));
    EXPECT_EQ(got.metric("ipc_ci_lo"), got.metric("ipc"));
    EXPECT_EQ(got.metric("ipc_ci_hi"), got.metric("ipc"));
    EXPECT_EQ(got.metric("ipc_se"), 0.0);
    EXPECT_EQ(got.metric("vp_coverage_ci_lo"),
              got.metric("vp_coverage_ci_hi"));
    EXPECT_EQ(got.metric("sample_windows"), 0.0);
    EXPECT_EQ(got.metric("sample_strata"), 1.0);
    EXPECT_EQ(got.metric("sample_budget"),
              static_cast<double>(spec.sampleBudget));
}

TEST(SampledJob, DeterministicAcrossRunsAndThreadCounts)
{
    workload::TraceCache cache;
    runner::JobSpec spec = pipelineSpec();
    runner::JobResult a = runSampledJob(spec, &cache, 1);
    runner::JobResult b = runSampledJob(spec, &cache, 1);
    runner::JobResult c = runSampledJob(spec, &cache, 4);

    ASSERT_EQ(a.metrics.size(), b.metrics.size());
    ASSERT_EQ(a.metrics.size(), c.metrics.size());
    for (size_t i = 0; i < a.metrics.size(); ++i) {
        EXPECT_EQ(a.metrics[i].first, b.metrics[i].first);
        EXPECT_EQ(a.metrics[i].second, b.metrics[i].second)
            << a.metrics[i].first;
        EXPECT_EQ(a.metrics[i].first, c.metrics[i].first);
        EXPECT_EQ(a.metrics[i].second, c.metrics[i].second)
            << a.metrics[i].first << " differs at 4 threads";
    }
}

TEST(SampledJob, SeedSelectsDifferentWindows)
{
    workload::TraceCache cache;
    runner::JobSpec spec = pipelineSpec();
    runner::JobResult a = runSampledJob(spec, &cache, 2);
    spec.sampleSeed = 2;
    runner::JobResult b = runSampledJob(spec, &cache, 2);
    // Same budget and geometry either way...
    EXPECT_EQ(a.metric("sample_budget"), b.metric("sample_budget"));
    // ...but another seed draws other windows, so the estimate moves
    // (mcf's windows genuinely differ; identical estimates would mean
    // the seed is ignored).
    EXPECT_NE(a.metric("ipc"), b.metric("ipc"));
}

TEST(SampledJob, IntervalBracketsTheEstimateAndCiColumnsExist)
{
    workload::TraceCache cache;
    runner::JobSpec spec = pipelineSpec();
    runner::JobResult r = runSampledJob(spec, &cache, 2);

    double ipc = r.metric("ipc");
    EXPECT_GT(ipc, 0.0);
    EXPECT_LE(r.metric("ipc_ci_lo"), ipc);
    EXPECT_GE(r.metric("ipc_ci_hi"), ipc);
    EXPECT_LE(r.metric("vp_coverage_ci_lo"),
              r.metric("vp_coverage"));
    EXPECT_GE(r.metric("vp_coverage_ci_hi"),
              r.metric("vp_coverage"));

    // Budget of 20k / 4096-record windows: 4 measured windows.
    EXPECT_EQ(r.metric("sample_windows"), 4.0);
    EXPECT_GE(r.metric("sample_strata"), 1.0);
    // Every stratum needs a pilot pair, so K windows can support at
    // most K/2 strata (the collapse rule).
    EXPECT_LE(r.metric("sample_strata"), 2.0);
}

TEST(SampledJob, ProfileModeReportsAccuracyIntervals)
{
    workload::TraceCache cache;
    runner::JobSpec spec;
    spec.mode = runner::JobMode::Profile;
    spec.workload = "gzip";
    spec.predictor = "stride";
    spec.seed = 1;
    spec.instructions = 50'000;
    spec.warmup = 10'000;
    spec.sampleBudget = 20'000;
    spec.sampleWindow = 4096;
    runner::JobResult r = runSampledJob(spec, &cache, 2);

    double acc = r.metric("accuracy");
    EXPECT_GT(acc, 0.0);
    EXPECT_LE(acc, 1.0);
    EXPECT_LE(r.metric("accuracy_ci_lo"), acc);
    EXPECT_GE(r.metric("accuracy_ci_hi"), acc);
    EXPECT_LE(r.metric("coverage_ci_lo"), r.metric("coverage"));
    EXPECT_GE(r.metric("gated_accuracy_ci_hi"),
              r.metric("gated_accuracy"));
    EXPECT_EQ(r.metric("sample_windows"), 4.0);
}

TEST(SampledJob, RunJobRoutesSampledSpecsThroughTheHook)
{
    sample::install();
    workload::TraceCache cache;
    runner::JobSpec spec = pipelineSpec();
    runner::JobResult direct = runSampledJob(spec, &cache, 2);
    runner::JobResult routed = runner::runJob(spec, &cache, 2);
    EXPECT_EQ(direct.metric("ipc"), routed.metric("ipc"));
    EXPECT_EQ(direct.metric("sample_windows"),
              routed.metric("sample_windows"));
}

TEST(SampledJobDeath, RejectsFullTraceSpec)
{
    workload::TraceCache cache;
    runner::JobSpec spec = pipelineSpec();
    spec.sampleBudget = 0;
    EXPECT_DEATH(runSampledJob(spec, &cache, 1), "full-trace spec");
}

// ------------------------------------------------- spec validation

TEST(SampledSpecValidation, WindowLongerThanRegionIsRejected)
{
    runner::JobSpec spec = pipelineSpec();
    spec.sampleWindow = spec.instructions + 1;
    spec.sampleBudget = spec.sampleWindow;
    std::string error;
    EXPECT_FALSE(spec.validateOr(&error));
    EXPECT_NE(error.find("longer than the measured region"),
              std::string::npos)
        << error;
    EXPECT_DEATH(spec.validate(), "longer than the measured region");
}

TEST(SampledSpecValidation, BudgetBelowOneWindowIsRejected)
{
    runner::JobSpec spec = pipelineSpec();
    spec.sampleBudget = spec.sampleWindow - 1;
    std::string error;
    EXPECT_FALSE(spec.validateOr(&error));
    EXPECT_NE(error.find("fits zero windows"), std::string::npos)
        << error;
}

TEST(SampledSpecValidation, ZeroWindowLengthIsRejected)
{
    runner::JobSpec spec = pipelineSpec();
    spec.sampleWindow = 0;
    std::string error;
    EXPECT_FALSE(spec.validateOr(&error));
    EXPECT_NE(error.find("window length must be > 0"),
              std::string::npos)
        << error;
}

TEST(SampledSpecValidation, ZeroBudgetMeansFullTraceAndAlwaysValid)
{
    runner::JobSpec spec = pipelineSpec();
    spec.sampleBudget = 0;
    spec.sampleWindow = 0; // ignored without a budget
    std::string error;
    EXPECT_TRUE(spec.validateOr(&error)) << error;
    EXPECT_FALSE(spec.sampled());
}

} // namespace
