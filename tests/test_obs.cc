/**
 * @file
 * Tests for the observability layer (src/obs): scoped-timer
 * accounting and nesting, thread-local registry merging, the
 * disabled-mode no-op guarantee, and the Chrome trace-event exporter's
 * JSON.
 *
 * Obs state is process-global, so every test starts from
 * obs::reset() and leaves collection disabled on exit.
 */

#include <gtest/gtest.h>

#include <atomic>
#include <cstdlib>
#include <map>
#include <new>
#include <sstream>
#include <thread>
#include <vector>

#include "obs/obs.hh"
#include "obs/trace_export.hh"
#include "util/json.hh"

using namespace gdiff;

namespace {

/**
 * Global operator-new hook: counts every allocation so tests can
 * assert a code region allocates nothing. Counting is always on (the
 * counter is a relaxed atomic; the overhead is irrelevant to tests).
 */
std::atomic<uint64_t> gAllocations{0};

} // namespace

// GCC flags free() on new-ed pointers here, but these replacements
// pair with each other: everything new returns came from malloc.
#if defined(__GNUC__) && !defined(__clang__)
#pragma GCC diagnostic push
#pragma GCC diagnostic ignored "-Wmismatched-new-delete"
#endif

void *
operator new(std::size_t size)
{
    gAllocations.fetch_add(1, std::memory_order_relaxed);
    if (void *p = std::malloc(size == 0 ? 1 : size))
        return p;
    throw std::bad_alloc();
}

void
operator delete(void *p) noexcept
{
    std::free(p);
}

void
operator delete(void *p, std::size_t) noexcept
{
    std::free(p);
}

#if defined(__GNUC__) && !defined(__clang__)
#pragma GCC diagnostic pop
#endif

namespace {

class ObsTest : public ::testing::Test
{
  protected:
    void
    SetUp() override
    {
        obs::reset();
        obs::setEnabled(true);
    }

    void
    TearDown() override
    {
        obs::setEnabled(false);
        obs::reset();
    }
};

void
spinNanos(uint64_t ns)
{
    uint64_t t0 = obs::nowNs();
    while (obs::nowNs() - t0 < ns) {
    }
}

TEST_F(ObsTest, ScopedTimerAccumulates)
{
    {
        obs::ScopedTimer t("unit.outer");
        spinNanos(200'000);
    }
    {
        obs::ScopedTimer t("unit.outer");
        spinNanos(200'000);
    }
    obs::Snapshot snap = obs::snapshot();
    ASSERT_EQ(snap.timers.count("unit.outer"), 1u);
    const obs::TimerStat &s = snap.timers.at("unit.outer");
    EXPECT_EQ(s.calls, 2u);
    EXPECT_GE(s.totalNs, 400'000u);
}

TEST_F(ObsTest, NestedTimersAttributeToBothScopes)
{
    {
        obs::ScopedTimer outer("unit.outer");
        spinNanos(100'000);
        {
            obs::ScopedTimer inner("unit.inner");
            spinNanos(100'000);
        }
    }
    obs::Snapshot snap = obs::snapshot();
    const obs::TimerStat &outer = snap.timers.at("unit.outer");
    const obs::TimerStat &inner = snap.timers.at("unit.inner");
    // Wall-clock scopes: the outer scope contains the inner one.
    EXPECT_GE(outer.totalNs, inner.totalNs + 100'000u);
    EXPECT_GE(inner.totalNs, 100'000u);
}

TEST_F(ObsTest, MacroRespectsRuntimeGate)
{
    {
        GDIFF_OBS_SCOPE("unit.gated");
        GDIFF_OBS_COUNT("unit.gated_count", 3);
    }
    obs::setEnabled(false);
    {
        GDIFF_OBS_SCOPE("unit.gated");
        GDIFF_OBS_COUNT("unit.gated_count", 3);
    }
    obs::setEnabled(true);
    obs::Snapshot snap = obs::snapshot();
    EXPECT_EQ(snap.timers.at("unit.gated").calls, 1u);
    EXPECT_EQ(snap.counters.at("unit.gated_count"), 3u);
}

TEST_F(ObsTest, RegistriesMergeAcrossThreads)
{
    constexpr unsigned kThreads = 4;
    constexpr uint64_t kPerThread = 1000;
    std::vector<std::thread> pool;
    for (unsigned t = 0; t < kThreads; ++t) {
        pool.emplace_back([] {
            obs::Registry &reg = obs::Registry::local();
            std::atomic<uint64_t> *c = reg.counter("unit.merged");
            for (uint64_t i = 0; i < kPerThread; ++i)
                c->fetch_add(1, std::memory_order_relaxed);
            reg.addTimer("unit.thread_timer", 1000, 1);
            reg.histogram("unit.hist")->record(reg.tid() % 8);
            reg.addSpan("unit.span", obs::nowNs(), 10);
        });
    }
    for (auto &th : pool)
        th.join();

    // The workers are dead; their registries must still be visible.
    obs::Snapshot snap = obs::snapshot();
    EXPECT_EQ(snap.counters.at("unit.merged"), kThreads * kPerThread);
    EXPECT_EQ(snap.timers.at("unit.thread_timer").calls, kThreads);
    EXPECT_EQ(snap.timers.at("unit.thread_timer").totalNs,
              kThreads * 1000u);
    EXPECT_EQ(snap.histograms.at("unit.hist").samples(), kThreads);

    // One span per worker, each on its own thread id.
    std::map<uint32_t, int> perTid;
    for (const auto &ev : snap.spans)
        if (ev.name == "unit.span")
            ++perTid[ev.tid];
    EXPECT_EQ(perTid.size(), kThreads);
    for (const auto &[tid, count] : perTid) {
        (void)tid;
        EXPECT_EQ(count, 1);
    }
}

TEST_F(ObsTest, CounterAddressesAreStable)
{
    obs::Registry &reg = obs::Registry::local();
    std::atomic<uint64_t> *a = reg.counter("unit.addr_a");
    // Creating many more counters must not move the first one
    // (node-based storage), so hot sites may cache the pointer.
    for (int i = 0; i < 100; ++i)
        reg.counter("unit.addr_fill_" + std::to_string(i));
    EXPECT_EQ(reg.counter("unit.addr_a"), a);
    a->fetch_add(7, std::memory_order_relaxed);
    EXPECT_EQ(obs::snapshot().counters.at("unit.addr_a"), 7u);
}

TEST_F(ObsTest, DisabledModeIsANoOp)
{
    // Seed one counter while enabled so the snapshot has a baseline,
    // and warm up the calling thread's registry.
    GDIFF_OBS_COUNT("unit.noop", 1);
    obs::Registry &reg = obs::Registry::local();
    std::atomic<uint64_t> *addr = reg.counter("unit.noop");
    obs::Snapshot before = obs::snapshot();

    obs::setEnabled(false);
    uint64_t allocs0 = gAllocations.load(std::memory_order_relaxed);
    for (int i = 0; i < 1000; ++i) {
        GDIFF_OBS_SCOPE("unit.noop_scope");
        GDIFF_OBS_SPAN("unit.noop_span");
        GDIFF_OBS_COUNT("unit.noop", 1);
        GDIFF_OBS_COUNT("unit.noop_new_counter", 1);
    }
    uint64_t allocs1 = gAllocations.load(std::memory_order_relaxed);
    obs::setEnabled(true);

    // Zero allocations across 1000 disabled call sites...
    EXPECT_EQ(allocs1 - allocs0, 0u);
    // ...no registry mutations of any kind...
    obs::Snapshot after = obs::snapshot();
    EXPECT_EQ(after.counters, before.counters);
    EXPECT_EQ(after.counters.count("unit.noop_new_counter"), 0u);
    EXPECT_EQ(after.timers.size(), before.timers.size());
    EXPECT_EQ(after.spans.size(), before.spans.size());
    // ...and existing counter addresses unchanged.
    EXPECT_EQ(reg.counter("unit.noop"), addr);
}

TEST_F(ObsTest, ResetPreservesCounterAddresses)
{
    obs::Registry &reg = obs::Registry::local();
    std::atomic<uint64_t> *addr = reg.counter("unit.reset_me");
    addr->fetch_add(5, std::memory_order_relaxed);
    obs::reset();
    // A cached pointer survives reset and starts again from zero.
    EXPECT_EQ(reg.counter("unit.reset_me"), addr);
    EXPECT_EQ(addr->load(std::memory_order_relaxed), 0u);
    EXPECT_EQ(obs::snapshot().counters.at("unit.reset_me"), 0u);
}

// ------------------------------------------------ trace exporter

TEST_F(ObsTest, ChromeTraceIsWellFormedJson)
{
    obs::Registry &reg = obs::Registry::local();
    reg.addSpan("alpha", 1000, 500, {{"key", "va\"lue"}});
    reg.addSpan("beta", 2000, 250);
    GDIFF_OBS_COUNT("unit.trace_counter", 42);

    std::ostringstream os;
    obs::writeChromeTrace(os, obs::snapshot());

    json::Value root;
    std::string error;
    ASSERT_TRUE(json::parse(os.str(), root, &error)) << error;
    const json::Value &events = root.at("traceEvents");
    ASSERT_TRUE(events.isArray());

    size_t spans = 0, metas = 0, instants = 0;
    for (const auto &ev : events.array) {
        const std::string &ph = ev.at("ph").asString();
        EXPECT_TRUE(ev.find("name") != nullptr);
        EXPECT_TRUE(ev.find("pid") != nullptr);
        EXPECT_TRUE(ev.find("tid") != nullptr);
        if (ph == "X") {
            ++spans;
            EXPECT_GE(ev.at("dur").asNumber(), 0.0);
            EXPECT_GE(ev.at("ts").asNumber(), 0.0);
        } else if (ph == "M") {
            ++metas;
        } else if (ph == "i") {
            ++instants;
        } else {
            ADD_FAILURE() << "unexpected event phase '" << ph << "'";
        }
    }
    EXPECT_EQ(spans, 2u);
    EXPECT_GE(metas, 1u); // at least this thread's name
    EXPECT_EQ(instants, 1u); // the counter totals

    // The escaped arg value must round-trip through the parser.
    bool sawAlpha = false;
    for (const auto &ev : events.array) {
        if (ev.at("name").asString() != "alpha")
            continue;
        sawAlpha = true;
        EXPECT_EQ(ev.at("args").at("key").asString(), "va\"lue");
    }
    EXPECT_TRUE(sawAlpha);
}

TEST_F(ObsTest, ChromeTraceTimestampsMonotonicPerThread)
{
    constexpr unsigned kThreads = 3;
    std::vector<std::thread> pool;
    for (unsigned t = 0; t < kThreads; ++t) {
        pool.emplace_back([] {
            for (int i = 0; i < 20; ++i) {
                obs::ScopedTimer span("unit.mono", /*withSpan=*/true);
                spinNanos(2'000);
            }
        });
    }
    for (auto &th : pool)
        th.join();

    std::ostringstream os;
    obs::writeChromeTrace(os, obs::snapshot());
    json::Value root;
    std::string error;
    ASSERT_TRUE(json::parse(os.str(), root, &error)) << error;

    std::map<double, std::vector<double>> byTid;
    for (const auto &ev : root.at("traceEvents").array)
        if (ev.at("ph").asString() == "X")
            byTid[ev.at("tid").asNumber()].push_back(
                ev.at("ts").asNumber());
    ASSERT_EQ(byTid.size(), kThreads);
    for (const auto &[tid, stamps] : byTid) {
        (void)tid;
        EXPECT_EQ(stamps.size(), 20u);
        for (size_t i = 1; i < stamps.size(); ++i)
            EXPECT_GT(stamps[i], stamps[i - 1])
                << "non-monotonic ts at index " << i;
    }
}

TEST_F(ObsTest, WriteChromeTraceReportsBadPath)
{
    EXPECT_FALSE(obs::writeChromeTrace(
        "/nonexistent-dir/trace.json", obs::snapshot()));
}

TEST_F(ObsTest, PrintSummaryShowsStagesAndCounters)
{
    obs::Registry &reg = obs::Registry::local();
    reg.addTimer("unit.stage", 1'500'000, 3);
    reg.addCount("unit.events", 9);
    reg.histogram("unit.lat")->record(5);

    std::ostringstream os;
    obs::printSummary(os);
    const std::string text = os.str();
    EXPECT_NE(text.find("obs stage summary"), std::string::npos);
    EXPECT_NE(text.find("unit.stage"), std::string::npos);
    EXPECT_NE(text.find("obs counters"), std::string::npos);
    EXPECT_NE(text.find("unit.events"), std::string::npos);
    EXPECT_NE(text.find("obs histograms"), std::string::npos);
    EXPECT_NE(text.find("unit.lat"), std::string::npos);
}

} // namespace
