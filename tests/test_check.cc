/**
 * @file
 * Differential-checking subsystem tests: oracle-vs-production
 * equivalence on fuzzed streams for every predictor pair, fuzzer
 * determinism, shrinker convergence, the mutation-sanity probe (a
 * deliberately corrupted oracle must be caught and its divergence
 * minimized), repro-artifact round-trips, and pipeline invariants on
 * fuzzed programs.
 */

#include <gtest/gtest.h>

#include <cstdio>
#include <string>
#include <vector>

#include "check/differ.hh"
#include "check/fuzzer.hh"
#include "check/reference.hh"
#include "check/shrink.hh"
#include "pipeline/ooo_model.hh"
#include "runner/factory.hh"
#include "workload/workload.hh"

namespace gdiff {
namespace check {
namespace {

std::vector<FuzzRecord>
fuzz10k(uint64_t seed)
{
    FuzzStreamConfig cfg;
    cfg.seed = seed;
    cfg.records = 10'000;
    return fuzzValueStream(cfg);
}

// -------------------------------------------- oracle equivalence

class PairEquivalence : public ::testing::TestWithParam<std::string>
{};

TEST_P(PairEquivalence, OracleMatchesProductionOnFuzzStreams)
{
    for (uint64_t seed : {1, 2, 3}) {
        std::vector<FuzzRecord> stream = fuzz10k(seed);
        PredictorPair pair = makePair(GetParam());
        auto d = diffStream(*pair.production, *pair.oracle, stream);
        ASSERT_FALSE(d.has_value())
            << "seed " << seed << ": " << d->describe();
    }
}

TEST_P(PairEquivalence, MutationSanityCatchesAndShrinks)
{
    // A corrupted oracle MUST diverge — and the divergence must
    // minimize to a handful of records.
    const std::string name = GetParam();
    auto still_fails = [&](const std::vector<FuzzRecord> &s) {
        PredictorPair pair = makePair(name);
        CorruptedOracle bad(std::move(pair.oracle),
                            /*corrupt_after=*/5);
        return diffStream(*pair.production, bad, s).has_value();
    };
    std::vector<FuzzRecord> stream = fuzz10k(42);
    ASSERT_TRUE(still_fails(stream))
        << name << ": corrupted oracle was not detected";
    std::vector<FuzzRecord> shrunk =
        shrinkStream(stream, still_fails);
    EXPECT_LE(shrunk.size(), 64u) << name;
    EXPECT_TRUE(still_fails(shrunk))
        << name << ": shrunk stream no longer reproduces";
}

INSTANTIATE_TEST_SUITE_P(AllPairs, PairEquivalence,
                         ::testing::ValuesIn(pairNames()));

TEST(PairZooTest, UnknownPairIsFatal)
{
    EXPECT_EXIT(makePair("psychic"), ::testing::ExitedWithCode(1),
                "unknown predictor pair");
}

// ------------------------------------------------------ the differ

TEST(DifferTest, ReportsFirstDivergingRecord)
{
    // last_value vs a 2-delta stride oracle on 10,20,30,40: the
    // stride is adopted once +10 repeats (after record 2), so the
    // models first disagree predicting record 3.
    PredictorPair lv = makePair("last_value");
    RefStride2Delta strideOracle;
    std::vector<FuzzRecord> stream = {{0x400000, 10},
                                      {0x400000, 20},
                                      {0x400000, 30},
                                      {0x400000, 40}};
    auto d = diffStream(*lv.production, strideOracle, stream);
    ASSERT_TRUE(d.has_value());
    EXPECT_EQ(d->index, 3u);
    EXPECT_EQ(d->prodValue, 30);
    EXPECT_EQ(d->refValue, 40);
    EXPECT_NE(d->describe().find("record 3"), std::string::npos);
}

TEST(DifferTest, DigestIsOrderSensitive)
{
    std::vector<FuzzRecord> a = {{1, 2}, {3, 4}};
    std::vector<FuzzRecord> b = {{3, 4}, {1, 2}};
    EXPECT_NE(streamDigest(a), streamDigest(b));
    EXPECT_EQ(streamDigest(a), streamDigest(a));
}

// ------------------------------------------------------- the fuzzer

TEST(FuzzerTest, StreamIsBitReproducible)
{
    FuzzStreamConfig cfg;
    cfg.seed = 99;
    cfg.records = 5'000;
    std::vector<FuzzRecord> a = fuzzValueStream(cfg);
    std::vector<FuzzRecord> b = fuzzValueStream(cfg);
    EXPECT_EQ(a, b);
    cfg.seed = 100;
    EXPECT_NE(streamDigest(a), streamDigest(fuzzValueStream(cfg)));
}

TEST(FuzzerTest, ProgramSourceIsDeterministicAndAssembles)
{
    FuzzProgramConfig cfg;
    cfg.seed = 3;
    EXPECT_EQ(fuzzProgramSource(cfg), fuzzProgramSource(cfg));

    workload::Workload w = fuzzProgram(cfg);
    auto exec = w.makeExecutor();
    workload::TraceRecord r;
    uint64_t n = 0;
    while (exec->next(r))
        ++n;
    EXPECT_TRUE(exec->halted()) << "fuzzed program must reach halt";
    EXPECT_GT(n, cfg.iterations) << "loop body should execute";
}

TEST(FuzzerTest, ProgramTraceIsBitReproducible)
{
    FuzzProgramConfig cfg;
    cfg.seed = 11;
    auto digestOf = [&]() {
        workload::Workload w = fuzzProgram(cfg);
        auto exec = w.makeExecutor();
        std::vector<FuzzRecord> values;
        workload::TraceRecord r;
        while (exec->next(r)) {
            if (r.producesValue())
                values.push_back(FuzzRecord{r.pc, r.value});
        }
        return streamDigest(values);
    };
    EXPECT_EQ(digestOf(), digestOf());
}

// ------------------------------------------------------ the shrinker

TEST(ShrinkTest, ConvergesToTheMinimalCore)
{
    // Predicate: at least 3 records with the marker PC. ddmin must
    // strip all 997 irrelevant records and keep exactly 3.
    std::vector<FuzzRecord> stream;
    for (int i = 0; i < 1000; ++i) {
        uint64_t pc = (i % 337 == 0) ? 0xdead : 0x400000 + 4 * i;
        stream.push_back(FuzzRecord{pc, i});
    }
    auto pred = [](const std::vector<FuzzRecord> &s) {
        size_t hits = 0;
        for (const auto &r : s)
            hits += r.pc == 0xdead;
        return hits >= 3;
    };
    ASSERT_TRUE(pred(stream));
    std::vector<FuzzRecord> shrunk = shrinkStream(stream, pred);
    EXPECT_EQ(shrunk.size(), 3u);
    for (const auto &r : shrunk)
        EXPECT_EQ(r.pc, 0xdeadu);
}

TEST(ShrinkTest, PassingStreamIsReturnedUnchanged)
{
    std::vector<FuzzRecord> stream = {{1, 1}, {2, 2}};
    auto never = [](const std::vector<FuzzRecord> &) {
        return false;
    };
    EXPECT_EQ(shrinkStream(stream, never), stream);
}

TEST(ShrinkTest, TrialBudgetIsRespected)
{
    std::vector<FuzzRecord> stream;
    for (int i = 0; i < 256; ++i)
        stream.push_back(FuzzRecord{static_cast<uint64_t>(i), i});
    uint64_t calls = 0;
    auto pred = [&](const std::vector<FuzzRecord> &s) {
        ++calls;
        return !s.empty();
    };
    ShrinkConfig cfg;
    cfg.maxTrials = 20;
    shrinkStream(stream, pred, cfg);
    EXPECT_LE(calls, cfg.maxTrials);
}

// ------------------------------------------------- repro artifacts

TEST(ArtifactTest, RoundTripsThroughTraceIoV2)
{
    FuzzStreamConfig cfg;
    cfg.seed = 17;
    cfg.records = 200;
    std::vector<FuzzRecord> stream = fuzzValueStream(cfg);
    std::string path = std::string(::testing::TempDir()) + "/" +
                       reproArtifactName("gdiff", 17);
    writeReproArtifact(path, stream);
    std::vector<FuzzRecord> back = readReproArtifact(path);
    EXPECT_EQ(stream, back);
    EXPECT_EQ(streamDigest(stream), streamDigest(back));
    std::remove(path.c_str());
}

TEST(ArtifactTest, NameEncodesPairAndSeed)
{
    EXPECT_EQ(reproArtifactName("fcm", 7),
              "gdifffuzz_fcm_seed7.gdtr");
}

TEST(ArtifactTest, TypedReaderRoundTripsGoodArtifacts)
{
    FuzzStreamConfig cfg;
    cfg.seed = 23;
    cfg.records = 150;
    std::vector<FuzzRecord> stream = fuzzValueStream(cfg);
    std::string path =
        std::string(::testing::TempDir()) + "repro_typed.gdtr";
    writeReproArtifact(path, stream);
    std::vector<FuzzRecord> back;
    workload::TraceIoResult io;
    ASSERT_TRUE(readReproArtifactOr(path, back, &io));
    EXPECT_EQ(io.status, workload::TraceIoStatus::End);
    EXPECT_EQ(back, stream);
    std::remove(path.c_str());
}

TEST(ArtifactTest, TypedReaderReportsCorruptionInsteadOfDying)
{
    // Regression: gdifffuzz --replay used to fatal() inside
    // TraceFileSource on a damaged artifact. The typed reader must
    // return the failure status and leave the process alive.
    FuzzStreamConfig cfg;
    cfg.seed = 29;
    cfg.records = 150;
    std::vector<FuzzRecord> stream = fuzzValueStream(cfg);
    std::string good =
        std::string(::testing::TempDir()) + "repro_good.gdtr";
    writeReproArtifact(good, stream);

    FILE *f = fopen(good.c_str(), "rb");
    ASSERT_NE(f, nullptr);
    fseek(f, 0, SEEK_END);
    long size = ftell(f);
    fseek(f, 0, SEEK_SET);
    std::string bytes(static_cast<size_t>(size), '\0');
    ASSERT_EQ(fread(bytes.data(), 1, bytes.size(), f), bytes.size());
    fclose(f);

    std::vector<FuzzRecord> back;
    workload::TraceIoResult io;

    // Flip a byte in the middle of the payload: digest/corruption.
    std::string flipped = bytes;
    flipped[flipped.size() / 2] ^= 0x5a;
    std::string bad =
        std::string(::testing::TempDir()) + "repro_bad.gdtr";
    {
        FILE *w = fopen(bad.c_str(), "wb");
        ASSERT_NE(w, nullptr);
        fwrite(flipped.data(), 1, flipped.size(), w);
        fclose(w);
    }
    EXPECT_FALSE(readReproArtifactOr(bad, back, &io));
    EXPECT_NE(io.status, workload::TraceIoStatus::End);
    EXPECT_NE(io.status, workload::TraceIoStatus::Ok);

    // Truncate to half: a clean typed Truncated/IoError, not a
    // fatal.
    std::string half = bytes.substr(0, bytes.size() / 2);
    {
        FILE *w = fopen(bad.c_str(), "wb");
        ASSERT_NE(w, nullptr);
        fwrite(half.data(), 1, half.size(), w);
        fclose(w);
    }
    back.clear();
    EXPECT_FALSE(readReproArtifactOr(bad, back, &io));
    EXPECT_NE(io.status, workload::TraceIoStatus::End);

    // Not a trace file at all.
    {
        FILE *w = fopen(bad.c_str(), "wb");
        ASSERT_NE(w, nullptr);
        fputs("definitely not a trace", w);
        fclose(w);
    }
    back.clear();
    EXPECT_FALSE(readReproArtifactOr(bad, back, &io));
    EXPECT_EQ(io.status, workload::TraceIoStatus::BadMagic);

    // Missing file.
    EXPECT_FALSE(readReproArtifactOr(
        "/nonexistent-dir/repro.gdtr", back, &io));
    EXPECT_EQ(io.status, workload::TraceIoStatus::IoError);

    std::remove(good.c_str());
    std::remove(bad.c_str());
}

// ------------------------------------------- pipeline invariants

TEST(PipelineInvariantTest, FuzzedProgramsHoldAllInvariants)
{
    for (uint64_t seed : {1, 2}) {
        FuzzProgramConfig pcfg;
        pcfg.seed = seed;
        workload::Workload w = fuzzProgram(pcfg);
        for (const char *scheme_name : {"baseline", "hgvq"}) {
            auto scheme = runner::makeScheme(scheme_name, 8, 0);
            pipeline::PipelineConfig cfg;
            cfg.check.enabled = true;
            pipeline::OooPipeline pipe(cfg, *scheme);
            auto exec = w.makeExecutor();
            pipeline::PipelineStats stats =
                pipe.run(*exec, 1'000'000'000);
            EXPECT_EQ(stats.checkViolations, 0u)
                << "seed " << seed << " scheme " << scheme_name
                << ": "
                << (stats.checkReports.empty()
                        ? "(no report)"
                        : stats.checkReports.front());
            EXPECT_LE(stats.ipc,
                      static_cast<double>(cfg.retireWidth) + 1e-9);
        }
    }
}

TEST(PipelineInvariantTest, KernelWorkloadHoldsInvariants)
{
    workload::Workload w = workload::makeWorkload("mcf", 1);
    auto scheme = runner::makeScheme("hgvq", 16, 0);
    pipeline::PipelineConfig cfg;
    cfg.check.enabled = true;
    pipeline::OooPipeline pipe(cfg, *scheme);
    auto exec = w.makeExecutor();
    pipeline::PipelineStats stats = pipe.run(*exec, 50'000, 5'000);
    EXPECT_EQ(stats.checkViolations, 0u)
        << (stats.checkReports.empty() ? "(no report)"
                                       : stats.checkReports.front());
}

TEST(PipelineInvariantTest, DisabledCheckingReportsNothing)
{
    FuzzProgramConfig pcfg;
    pcfg.seed = 4;
    pcfg.iterations = 50;
    workload::Workload w = fuzzProgram(pcfg);
    auto scheme = runner::makeScheme("baseline", 8, 0);
    pipeline::OooPipeline pipe(pipeline::PipelineConfig(), *scheme);
    auto exec = w.makeExecutor();
    pipeline::PipelineStats stats = pipe.run(*exec, 1'000'000'000);
    EXPECT_EQ(stats.checkViolations, 0u);
    EXPECT_TRUE(stats.checkReports.empty());
}

} // namespace
} // namespace check
} // namespace gdiff
