/**
 * @file
 * Workload-kernel tests: every kernel must run for a long stretch
 * without faulting, keep producing values, exercise memory, and be
 * deterministic for a fixed seed.
 */

#include <gtest/gtest.h>

#include "workload/kernels.hh"
#include "workload/workload.hh"

namespace gdiff {
namespace workload {
namespace {

struct StreamSummary
{
    uint64_t instructions = 0;
    uint64_t producers = 0;
    uint64_t loads = 0;
    uint64_t stores = 0;
    uint64_t branches = 0;
    uint64_t takenBranches = 0;
    uint64_t valueChecksum = 0;
};

StreamSummary
summarize(const Workload &w, uint64_t budget)
{
    auto exec = w.makeExecutor();
    StreamSummary s;
    TraceRecord r;
    while (s.instructions < budget && exec->next(r)) {
        ++s.instructions;
        if (r.producesValue()) {
            ++s.producers;
            s.valueChecksum =
                s.valueChecksum * 1099511628211ull +
                static_cast<uint64_t>(r.value);
        }
        if (r.isLoad())
            ++s.loads;
        if (r.isStore())
            ++s.stores;
        if (r.isCondBranch()) {
            ++s.branches;
            if (r.taken)
                ++s.takenBranches;
        }
    }
    return s;
}

class SpecKernel : public ::testing::TestWithParam<std::string>
{
};

TEST_P(SpecKernel, RunsWithoutHalting)
{
    Workload w = makeWorkload(GetParam(), 1);
    StreamSummary s = summarize(w, 200'000);
    // Kernels are infinite loops; they must consume the full budget.
    EXPECT_EQ(s.instructions, 200'000u);
}

TEST_P(SpecKernel, ProducesValuesAndMemoryTraffic)
{
    Workload w = makeWorkload(GetParam(), 1);
    StreamSummary s = summarize(w, 200'000);
    // At least a third of instructions produce predictable values.
    EXPECT_GT(s.producers, s.instructions / 3);
    EXPECT_GT(s.loads, 0u);
    EXPECT_GT(s.stores, 0u);
    EXPECT_GT(s.branches, 0u);
    EXPECT_GT(s.takenBranches, 0u);
}

TEST_P(SpecKernel, DeterministicForFixedSeed)
{
    Workload a = makeWorkload(GetParam(), 7);
    Workload b = makeWorkload(GetParam(), 7);
    EXPECT_EQ(summarize(a, 50'000).valueChecksum,
              summarize(b, 50'000).valueChecksum);
}

TEST_P(SpecKernel, SeedChangesTheStream)
{
    Workload a = makeWorkload(GetParam(), 1);
    Workload b = makeWorkload(GetParam(), 2);
    EXPECT_NE(summarize(a, 50'000).valueChecksum,
              summarize(b, 50'000).valueChecksum);
}

TEST_P(SpecKernel, HasLoopMarker)
{
    Workload w = makeWorkload(GetParam(), 1);
    EXPECT_FALSE(w.markers.empty());
    // Every marker must point into the text segment.
    for (const auto &[name, pc] : w.markers) {
        EXPECT_FALSE(name.empty());
        EXPECT_GE(pc, isa::textBase);
        EXPECT_LT(pc, isa::indexToPc(
                          static_cast<uint32_t>(w.program.size())));
    }
}

INSTANTIATE_TEST_SUITE_P(
    AllKernels, SpecKernel,
    ::testing::ValuesIn(specWorkloadNames()),
    [](const ::testing::TestParamInfo<std::string> &info) {
        return info.param;
    });

TEST(WorkloadRegistry, NamesAreThePapersTen)
{
    const auto &names = specWorkloadNames();
    ASSERT_EQ(names.size(), 10u);
    EXPECT_EQ(names.front(), "bzip2");
    EXPECT_EQ(names.back(), "vpr");
}

TEST(WorkloadRegistryDeath, UnknownNameIsFatal)
{
    EXPECT_EXIT(makeWorkload("nonesuch", 1),
                ::testing::ExitedWithCode(1), "unknown workload");
}

TEST(WorkloadMarkers, MissingMarkerIsFatal)
{
    Workload w = makeWorkload("parser", 1);
    EXPECT_EXIT((void)w.markerPc("nonesuch"),
                ::testing::ExitedWithCode(1), "no marker");
}

TEST(WorkloadMarkers, ParserHasFillLoad)
{
    Workload w = makeWorkload("parser", 1);
    EXPECT_GT(w.markerPc("fill_load"), 0u);
    EXPECT_GT(w.markerPc("len_load"), 0u);
}

TEST(WorkloadImage, AppliedToExecutor)
{
    Workload w = makeWorkload("parser", 1);
    auto exec = w.makeExecutor();
    // The first chunk's next pointer must point at the second chunk.
    int64_t next = exec->memory().read64(workload::kernels::dataBase);
    EXPECT_EQ(static_cast<uint64_t>(next),
              workload::kernels::dataBase + 80);
}

} // namespace
} // namespace workload
} // namespace gdiff
