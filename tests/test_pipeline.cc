/**
 * @file
 * OOO timing-model tests: IPC bounds, dependence serialisation,
 * cache and branch-penalty sensitivity, value-speculation effects,
 * and the writeback ordering that drives the predictor schemes.
 */

#include <gtest/gtest.h>

#include "isa/program_builder.hh"
#include "pipeline/ooo_model.hh"
#include "util/random.hh"
#include "workload/executor.hh"
#include "workload/workload.hh"

namespace gdiff {
namespace pipeline {
namespace {

using namespace isa;
using namespace isa::reg;

/** Straight-line independent ALU work in an endless loop. */
isa::Program
independentLoop()
{
    ProgramBuilder b("indep");
    Label top = b.newLabel();
    b.bind(top);
    for (int i = 0; i < 16; ++i)
        b.addi(static_cast<Reg>(t0 + (i % 8)), s1, i);
    b.jump(top);
    return b.build();
}

/** A serial dependence chain: every op feeds the next. */
isa::Program
serialLoop()
{
    ProgramBuilder b("serial");
    Label top = b.newLabel();
    b.bind(top);
    for (int i = 0; i < 16; ++i)
        b.addi(t0, t0, 1);
    b.jump(top);
    return b.build();
}

PipelineStats
runProgram(const isa::Program &p, uint64_t instructions,
           VpScheme *scheme = nullptr,
           const PipelineConfig &cfg = PipelineConfig::paper())
{
    workload::Executor exec(p);
    NoPrediction local;
    OooPipeline pipe(cfg, scheme ? *scheme : local);
    return pipe.run(exec, instructions, instructions / 10);
}

TEST(OooPipeline, IndependentWorkReachesWidthBound)
{
    PipelineStats s = runProgram(independentLoop(), 50'000);
    // 16 ALU ops + 1 jump per iteration, 4-wide machine: IPC must
    // approach (though never exceed) the machine width.
    EXPECT_GT(s.ipc, 3.0);
    EXPECT_LE(s.ipc, 4.05);
}

TEST(OooPipeline, SerialChainBoundByLatency)
{
    PipelineStats s = runProgram(serialLoop(), 50'000);
    // Every addi waits for its predecessor: IPC ~ 1 even on a 4-wide
    // machine.
    EXPECT_LT(s.ipc, 1.3);
    EXPECT_GT(s.ipc, 0.5);
}

TEST(OooPipeline, SerialBeatenByValuePrediction)
{
    // A perfectly stride-predictable serial chain: with value
    // speculation, consumers break free of the chain.
    LocalScheme scheme(
        std::make_unique<predictors::StridePredictor>(1024),
        "l_stride");
    PipelineStats base = runProgram(serialLoop(), 50'000);
    PipelineStats sped = runProgram(serialLoop(), 50'000, &scheme);
    EXPECT_GT(sped.ipc, base.ipc * 1.5);
    EXPECT_GT(sped.coverage.value(), 0.8);
    EXPECT_GT(sped.gatedAccuracy.value(), 0.9);
}

TEST(OooPipeline, CacheMissesSlowLoads)
{
    // Pointer-walk over a working set far larger than the D-cache vs
    // one that fits: the former must be slower.
    auto make_walk = [](int64_t words) {
        ProgramBuilder b("walk");
        Label top = b.newLabel();
        b.bind(top);
        b.load(t1, s1, 0);     // serialising load (chases itself)
        b.addi(s1, t1, 0);
        b.jump(top);
        Program p = b.build();
        workload::Workload w;
        w.program = p;
        // circular pointer chain with 64-byte pitch
        for (int64_t i = 0; i < words; ++i) {
            w.memoryImage.emplace_back(
                0x10000000 + static_cast<uint64_t>(i) * 64,
                0x10000000 +
                    static_cast<int64_t>(((i + 1) % words) * 64));
        }
        w.initialRegs[s1] = 0x10000000;
        return w;
    };

    NoPrediction s1_, s2_;
    workload::Workload small = make_walk(64);      // 4 KiB
    workload::Workload big = make_walk(32768);     // 2 MiB
    auto e1 = small.makeExecutor();
    auto e2 = big.makeExecutor();
    OooPipeline p1(PipelineConfig::paper(), s1_);
    OooPipeline p2(PipelineConfig::paper(), s2_);
    PipelineStats r1 = p1.run(*e1, 30'000, 3'000);
    PipelineStats r2 = p2.run(*e2, 30'000, 3'000);
    EXPECT_LT(r2.ipc, r1.ipc * 0.5);
    EXPECT_GT(r2.dcacheMissRate, 0.9);
    EXPECT_LT(r1.dcacheMissRate, 0.1);
}

TEST(OooPipeline, MispredictedBranchesCostCycles)
{
    // Alternating vs data-dependent (pseudo-random) branch.
    auto make_branchy = [](bool random) {
        ProgramBuilder b("branchy");
        Label top = b.newLabel();
        Label skip = b.newLabel();
        b.bind(top);
        b.load(t1, s1, 0);     // selector word
        b.addi(s1, s1, 8);
        b.andi(t2, t1, 1);
        b.beq(t2, zero, skip);
        b.addi(t3, t3, 1);
        b.bind(skip);
        b.addi(t4, t4, 1);
        b.blt(s1, a2, top);
        b.addi(s1, a1, 0);
        b.jump(top);
        workload::Workload w;
        w.program = b.build();
        Xorshift64Star rng(7);
        for (int64_t i = 0; i < 8192; ++i) {
            int64_t v = random ? static_cast<int64_t>(rng.below(2))
                               : 0;
            w.memoryImage.emplace_back(
                0x10000000 + static_cast<uint64_t>(i) * 8, v);
        }
        w.initialRegs[s1] = 0x10000000;
        w.initialRegs[a1] = 0x10000000;
        w.initialRegs[a2] = 0x10000000 + 8192 * 8;
        return w;
    };

    NoPrediction n1, n2;
    workload::Workload easy = make_branchy(false);
    workload::Workload hard = make_branchy(true);
    auto e1 = easy.makeExecutor();
    auto e2 = hard.makeExecutor();
    OooPipeline p1(PipelineConfig::paper(), n1);
    OooPipeline p2(PipelineConfig::paper(), n2);
    PipelineStats r1 = p1.run(*e1, 40'000, 8'000);
    PipelineStats r2 = p2.run(*e2, 40'000, 8'000);
    EXPECT_GT(r1.branchAccuracy, 0.95);
    EXPECT_LT(r2.branchAccuracy, 0.9);
    EXPECT_LT(r2.ipc, r1.ipc);
}

TEST(OooPipeline, ValueDelayGrowsWithLoadLatency)
{
    // The serialising pointer walk has long dispatch-to-writeback
    // intervals; the delay histogram must reflect producers flowing
    // past in-flight loads.
    workload::Workload w = workload::makeWorkload("mcf", 1);
    auto exec = w.makeExecutor();
    NoPrediction scheme;
    OooPipeline pipe(PipelineConfig::paper(), scheme);
    PipelineStats s = pipe.run(*exec, 60'000, 10'000);
    EXPECT_GT(s.valueDelay.mean(), 2.0);
    EXPECT_GT(s.valueDelay.samples(), 10'000u);
}

TEST(OooPipeline, MissingLoadStatsPopulated)
{
    workload::Workload w = workload::makeWorkload("mcf", 1);
    auto exec = w.makeExecutor();
    core::GDiffConfig gcfg;
    gcfg.order = 32;
    gcfg.tableEntries = 8192;
    HgvqScheme scheme(gcfg);
    OooPipeline pipe(PipelineConfig::paper(), scheme);
    PipelineStats s = pipe.run(*exec, 80'000, 20'000);
    EXPECT_GT(s.missLoadCoverage.total(), 1000u);
    EXPECT_GT(s.missLoadCoverage.value(), 0.2);
}

TEST(OooPipeline, StallAttributionMatchesKernelCharacter)
{
    // gcc is front-end bound (rotating indirect calls): redirect
    // bubbles dominate. mcf is memory bound: ROB stalls dominate.
    auto run = [](const char *name) {
        workload::Workload w = workload::makeWorkload(name, 1);
        auto exec = w.makeExecutor();
        NoPrediction scheme;
        OooPipeline pipe(PipelineConfig::paper(), scheme);
        return pipe.run(*exec, 80'000, 20'000);
    };
    PipelineStats gcc_s = run("gcc");
    PipelineStats mcf_s = run("mcf");
    EXPECT_GT(gcc_s.redirectBubbleCycles, gcc_s.robStallCycles);
    EXPECT_GT(mcf_s.robStallCycles, mcf_s.redirectBubbleCycles * 4);
    // attribution never exceeds total cycles
    EXPECT_LE(gcc_s.redirectBubbleCycles + gcc_s.icacheBubbleCycles,
              gcc_s.cycles * 2);
}

TEST(BranchPredictor, GsharePredictsStablePatterns)
{
    BranchPredictor bp(PipelineConfig::paper());
    workload::TraceRecord r;
    r.inst.op = isa::Opcode::Beq;
    r.pc = 0x400100;
    unsigned correct = 0;
    for (int i = 0; i < 200; ++i) {
        r.taken = true; // always taken
        if (bp.predictAndTrain(r))
            ++correct;
    }
    EXPECT_GT(correct, 180u);
}

TEST(BranchPredictor, RasMatchesCallReturnPairs)
{
    BranchPredictor bp(PipelineConfig::paper());
    workload::TraceRecord call;
    call.inst.op = isa::Opcode::Jal;
    call.pc = isa::indexToPc(10);
    call.nextPc = isa::indexToPc(100);
    call.taken = true;

    workload::TraceRecord ret;
    ret.inst.op = isa::Opcode::Jr;
    ret.pc = isa::indexToPc(105);
    ret.nextPc = isa::indexToPc(11); // return to call site + 1
    ret.taken = true;

    for (int i = 0; i < 10; ++i) {
        bp.predictAndTrain(call);
        EXPECT_TRUE(bp.predictAndTrain(ret));
    }
    EXPECT_DOUBLE_EQ(bp.indirectAccuracy().value(), 1.0);
}

TEST(BranchPredictor, RotatingIndirectTargetsMispredict)
{
    BranchPredictor bp(PipelineConfig::paper());
    workload::TraceRecord jalr;
    jalr.inst.op = isa::Opcode::Jalr;
    jalr.pc = isa::indexToPc(10);
    jalr.taken = true;
    unsigned correct = 0;
    for (int i = 0; i < 100; ++i) {
        jalr.nextPc = isa::indexToPc(
            static_cast<uint32_t>(100 + (i % 7) * 50));
        if (bp.predictAndTrain(jalr))
            ++correct;
    }
    // last-target BTB cannot track 7 rotating targets
    EXPECT_LT(correct, 20u);
}

} // namespace
} // namespace pipeline
} // namespace gdiff
