/**
 * @file
 * gdiff predictor tests, including the paper's worked example
 * (Figs. 6-7): instruction b's values are predicted from instruction
 * a's values two producers earlier with a constant difference.
 */

#include <gtest/gtest.h>

#include <limits>

#include "core/gdiff.hh"

namespace gdiff {
namespace core {
namespace {

constexpr uint64_t pcA = 0x400000;
constexpr uint64_t pcB = 0x400010;
constexpr uint64_t pcX = 0x400020; // uncorrelated noise producers
constexpr uint64_t pcY = 0x400030;

GDiffConfig
unlimited(unsigned order = 8, unsigned delay = 0)
{
    GDiffConfig c;
    c.order = order;
    c.tableEntries = 0;
    c.valueDelay = delay;
    return c;
}

TEST(GDiff, PaperFig6Fig7Example)
{
    // Paper Fig. 6: a: load r1 ... b: add r3, r1, #4 in a loop with
    // two uncorrelated producers in between. a produces (1, 8, 3, 2),
    // b produces (5, 12, 7, 6). After two iterations the predictor
    // learns distance 2 / diff 4 and predicts b correctly from then
    // on (Fig. 7 walks the 7 = 3 + 4 case).
    GDiffPredictor p(unlimited());
    const int64_t a_vals[4] = {1, 8, 3, 2};
    const int64_t b_vals[4] = {5, 12, 7, 6};
    const int64_t x_vals[4] = {900, 17, -4, 333}; // no correlation
    const int64_t y_vals[4] = {-8, 5551, 2, 71};

    int64_t guess = 0;
    // Iteration 1: nothing known.
    p.update(pcA, a_vals[0]);
    p.update(pcX, x_vals[0]);
    p.update(pcY, y_vals[0]);
    EXPECT_FALSE(p.predict(pcB, guess));
    p.update(pcB, b_vals[0]);

    // Iteration 2: b's diffs recorded last time; now the match at
    // distance 2 (value 8 in the queue) selects the distance.
    p.update(pcA, a_vals[1]);
    p.update(pcX, x_vals[1]);
    p.update(pcY, y_vals[1]);
    p.update(pcB, b_vals[1]);

    // Iterations 3 and 4: predictions must be exact (3+4=7, 2+4=6).
    for (int i = 2; i < 4; ++i) {
        p.update(pcA, a_vals[i]);
        p.update(pcX, x_vals[i]);
        p.update(pcY, y_vals[i]);
        ASSERT_TRUE(p.predict(pcB, guess)) << "iteration " << i;
        EXPECT_EQ(guess, b_vals[i]) << "iteration " << i;
        p.update(pcB, b_vals[i]);
    }
}

TEST(GDiff, LearnsInTwoProductions)
{
    // The paper notes the learning time is two dynamic productions.
    GDiffPredictor p(unlimited());
    int64_t guess;

    p.update(pcA, 100);
    p.update(pcB, 107); // first production: records diffs
    EXPECT_FALSE(p.predict(pcB, guess));

    p.update(pcA, 200);
    p.update(pcB, 207); // second production: distance selected

    p.update(pcA, 300);
    ASSERT_TRUE(p.predict(pcB, guess));
    EXPECT_EQ(guess, 307);
}

TEST(GDiff, SpillFillDiffZero)
{
    // A reload equals a recent producer exactly (diff 0): the parser
    // Fig. 1/2 pattern.
    GDiffPredictor p(unlimited());
    int64_t guess;
    for (int i = 0; i < 6; ++i) {
        int64_t noisy = 1000 + 37 * i * i; // no local pattern needed
        p.update(pcA, noisy);
        p.update(pcX, -i);
        if (i >= 2) {
            ASSERT_TRUE(p.predict(pcB, guess));
            EXPECT_EQ(guess, noisy);
        }
        p.update(pcB, noisy); // the fill reload
    }
}

TEST(GDiff, CorrelationBeyondOrderIsInvisible)
{
    // Correlated value sits 5 producers back but the order is 4.
    GDiffPredictor p(unlimited(4));
    int64_t guess;
    unsigned correct = 0;
    for (int i = 0; i < 10; ++i) {
        p.update(pcA, 50 * i);
        for (int k = 0; k < 4; ++k)
            p.update(pcX + static_cast<uint64_t>(k) * 4,
                     1000000 + i * 7919 + k * 131);
        if (p.predict(pcB, guess) && guess == 50 * i + 3)
            ++correct;
        p.update(pcB, 50 * i + 3);
    }
    EXPECT_EQ(correct, 0u);
}

TEST(GDiff, ValueDelayHidesShortCorrelations)
{
    // Distance-1 correlation, delay 2: the correlated value is always
    // inside the hidden zone, so gdiff cannot use it.
    GDiffPredictor p(unlimited(8, 2));
    int64_t guess;
    unsigned correct = 0;
    for (int i = 0; i < 20; ++i) {
        p.update(pcA, 17 * i * i);
        if (p.predict(pcB, guess) && guess == 17 * i * i + 5)
            ++correct;
        p.update(pcB, 17 * i * i + 5);
    }
    EXPECT_LE(correct, 2u);
}

TEST(GDiff, ValueDelayShiftsLoopCarriedDistance)
{
    // Two producers per iteration with constant per-iteration strides.
    // At delay T the predictor sees ages T+1..T+8, which still contain
    // the previous iterations' values, so stride locality survives —
    // the mechanism behind the paper's Fig. 10 tail.
    GDiffPredictor p(unlimited(8, 4));
    int64_t guess;
    unsigned correct = 0;
    for (int i = 0; i < 30; ++i) {
        if (p.predict(pcA, guess) && guess == 10 * i)
            ++correct;
        p.update(pcA, 10 * i);
        p.update(pcB, 10 * i + 3);
    }
    EXPECT_GE(correct, 20u);
}

TEST(GDiff, DistanceRelearnsAfterPatternShift)
{
    GDiffPredictor p(unlimited());
    int64_t guess;
    // Phase 1: b = a + 1 at distance 1.
    for (int i = 0; i < 5; ++i) {
        p.update(pcA, 11 * i * i + 1);
        p.update(pcB, 11 * i * i + 2);
    }
    // Phase 2: b decouples from a and couples to y at distance 1.
    unsigned tail_correct = 0;
    for (int i = 0; i < 6; ++i) {
        p.update(pcA, -9999 + 7777 * i * i * i);
        p.update(pcY, 3 * i * i + 100);
        bool predicted = p.predict(pcB, guess);
        if (predicted && guess == 3 * i * i + 140)
            ++tail_correct;
        p.update(pcB, 3 * i * i + 140);
    }
    EXPECT_GE(tail_correct, 3u); // relearned within two productions
}

TEST(GDiff, TaglessTableAliasing)
{
    GDiffConfig cfg;
    cfg.order = 4;
    cfg.tableEntries = 4; // tiny: pcA and pcA+16 collide
    GDiffPredictor p(cfg);
    p.update(pcA, 1);
    p.update(pcA + 16, 2);
    EXPECT_GT(p.tableConflictRate(), 0.0);
}

TEST(GDiff, UnlimitedTableNeverConflicts)
{
    GDiffPredictor p(unlimited());
    for (uint64_t i = 0; i < 100; ++i)
        p.update(pcA + i * 4, static_cast<int64_t>(i));
    EXPECT_DOUBLE_EQ(p.tableConflictRate(), 0.0);
}

TEST(GDiff, ExternalWindowInterface)
{
    GDiffPredictor p(unlimited(4));
    ValueWindow w;
    w.count = 2;
    w.values[0] = 50;
    w.values[1] = 30;

    // Train twice with the correlated value at window position 1.
    p.trainWithWindow(pcB, w, 37); // diffs recorded
    p.trainWithWindow(pcB, w, 37); // match -> distance selected

    int64_t guess = 0;
    ASSERT_TRUE(p.predictWithWindow(pcB, w, guess));
    EXPECT_EQ(guess, 37); // window[0] + stored diff

    // A shorter window than the learned distance suppresses the
    // prediction rather than reading garbage.
    ValueWindow short_w;
    short_w.count = 0;
    EXPECT_FALSE(p.predictWithWindow(pcB, short_w, guess));
}

TEST(GDiff, PrefersClosestMatchingDistance)
{
    // Identical values at distances 0 and 3: the selected distance
    // must be 0 (nearest-first priority).
    GDiffPredictor p(unlimited(4));
    ValueWindow w;
    w.count = 4;
    w.values[0] = 10;
    w.values[1] = 777;
    w.values[2] = 888;
    w.values[3] = 10;
    p.trainWithWindow(pcB, w, 15);
    p.trainWithWindow(pcB, w, 15);
    int64_t guess = 0;
    ASSERT_TRUE(p.predictWithWindow(pcB, w, guess));
    EXPECT_EQ(guess, 15);

    // Move only the distant copy: prediction must follow position 0.
    ValueWindow w2 = w;
    w2.values[3] = -555;
    ASSERT_TRUE(p.predictWithWindow(pcB, w2, guess));
    EXPECT_EQ(guess, 15);
}

TEST(GDiff, WrapsAroundOnOverflow)
{
    GDiffPredictor p(unlimited(2));
    int64_t big = std::numeric_limits<int64_t>::max() - 1;
    p.update(pcA, big);
    p.update(pcB, big + 0); // diff 0 path, no UB
    p.update(pcA, big);
    p.update(pcB, big);
    int64_t guess;
    p.update(pcA, big);
    ASSERT_TRUE(p.predict(pcB, guess));
    EXPECT_EQ(guess, big);
}

} // namespace
} // namespace core
} // namespace gdiff
