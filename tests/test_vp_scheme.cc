/**
 * @file
 * Value-speculation scheme tests: confidence gating, statistics,
 * in-flight compensation, SGVQ sensitivity to update reordering, and
 * HGVQ's dispatch-order anchoring (the paper's §4-§5 mechanisms, unit
 * tested outside the full pipeline).
 */

#include <gtest/gtest.h>

#include <utility>

#include "pipeline/vp_scheme.hh"
#include "predictors/stride.hh"

namespace gdiff {
namespace pipeline {
namespace {

constexpr uint64_t pcA = 0x400000;
constexpr uint64_t pcB = 0x400010;

core::GDiffConfig
smallConfig(unsigned order = 8)
{
    core::GDiffConfig c;
    c.order = order;
    c.tableEntries = 0;
    return c;
}

TEST(VpSchemeBase, NoPredictionNeverPredicts)
{
    NoPrediction s;
    for (int i = 0; i < 10; ++i) {
        VpDecision d = s.predictAtDispatch(pcA);
        EXPECT_FALSE(d.predicted);
        s.writeback(pcA, d, i);
    }
    EXPECT_EQ(s.coverage().hits(), 0u);
    EXPECT_EQ(s.coverage().total(), 10u);
}

TEST(VpSchemeBase, ConfidenceGatesCoverage)
{
    LocalScheme s(std::make_unique<predictors::StridePredictor>(0),
                  "l_stride");
    // Perfectly strided PC: confidence must engage after the paper's
    // two correct predictions (+2 twice reaches threshold 4).
    uint64_t first_confident = 0;
    for (uint64_t i = 0; i < 20; ++i) {
        VpDecision d = s.predictAtDispatch(pcA);
        if (d.confident && first_confident == 0)
            first_confident = i;
        s.writeback(pcA, d, static_cast<int64_t>(100 + 7 * i));
    }
    EXPECT_GT(first_confident, 0u);
    EXPECT_LE(first_confident, 6u);
    EXPECT_GT(s.gatedAccuracy().value(), 0.99);
}

TEST(VpSchemeBase, InFlightCompensation)
{
    // Dispatch 4 instances of a strided PC before any writeback: the
    // stride predictor must extrapolate across the in-flight copies.
    LocalScheme s(std::make_unique<predictors::StridePredictor>(0),
                  "l_stride");
    // warm up in lockstep first
    for (int i = 0; i < 8; ++i) {
        VpDecision d = s.predictAtDispatch(pcA);
        s.writeback(pcA, d, 10 * i);
    }
    // now dispatch a burst of 4 before writing any back
    VpDecision d0 = s.predictAtDispatch(pcA);
    VpDecision d1 = s.predictAtDispatch(pcA);
    VpDecision d2 = s.predictAtDispatch(pcA);
    VpDecision d3 = s.predictAtDispatch(pcA);
    EXPECT_EQ(d0.value, 80);
    EXPECT_EQ(d1.value, 90);
    EXPECT_EQ(d2.value, 100);
    EXPECT_EQ(d3.value, 110);
    s.writeback(pcA, d0, 80);
    s.writeback(pcA, d1, 90);
    s.writeback(pcA, d2, 100);
    s.writeback(pcA, d3, 110);
    // the burst itself was fully correct (early 2-delta warmup aside)
    EXPECT_GE(s.rawAccuracy().hits() + 2, s.rawAccuracy().total());
}

TEST(Sgvq, LearnsInCompletionOrder)
{
    // Stable completion order: B always follows A with diff 5.
    SgvqScheme s(smallConfig());
    for (int i = 0; i < 6; ++i) {
        VpDecision da = s.predictAtDispatch(pcA);
        VpDecision db = s.predictAtDispatch(pcB);
        int64_t a = 1000 + 31 * i * i;
        s.writeback(pcA, da, a);
        s.writeback(pcB, db, a + 5);
    }
    VpDecision da = s.predictAtDispatch(pcA);
    s.writeback(pcA, da, 7777);
    VpDecision db = s.predictAtDispatch(pcB);
    ASSERT_TRUE(db.predicted);
    EXPECT_EQ(db.value, 7782);
}

/**
 * Shared experiment for the two queue designs: B_i == A_i + 5, with
 * A_i committed before B_i dispatches, but the completion order of
 * A_i relative to the *previous* B (B_{i-1}) flipping at random —
 * the cache-miss execution variation of paper §4.
 *
 * @return (predicted, correct) counts for B after warmup.
 */
template <typename Scheme>
std::pair<unsigned, unsigned>
reorderExperiment(Scheme &s)
{
    unsigned correct = 0, predicted = 0;
    uint64_t flip = 0x9e3779b9;
    VpDecision prev_db;
    int64_t prev_b = 0;
    bool have_prev = false;
    for (int i = 0; i < 80; ++i) {
        int64_t a = 1000 + 31 * i * i; // locally unpredictable
        VpDecision da = s.predictAtDispatch(pcA);
        flip = flip * 6364136223846793005ull + 1;
        if (have_prev && (flip >> 63)) {
            s.writeback(pcB, prev_db, prev_b); // B_{i-1} first
            s.writeback(pcA, da, a);
        } else {
            s.writeback(pcA, da, a); // A_i first
            if (have_prev)
                s.writeback(pcB, prev_db, prev_b);
        }
        VpDecision db = s.predictAtDispatch(pcB);
        if (i > 20 && db.predicted) {
            ++predicted;
            correct += (db.value == a + 5);
        }
        prev_db = db;
        prev_b = a + 5;
        have_prev = true;
    }
    s.writeback(pcB, prev_db, prev_b);
    return {predicted, correct};
}

TEST(Sgvq, ReorderedCompletionsBreakTheCorrelation)
{
    // Completion-order queue: the flipping order keeps moving A's
    // queue position, so the learned distance cannot stabilise
    // (paper §4's execution-variation problem).
    SgvqScheme s(smallConfig());
    auto [predicted, correct] = reorderExperiment(s);
    EXPECT_LT(correct, predicted * 3 / 4 + 1);
}

TEST(Hgvq, DispatchOrderImmuneToCompletionReordering)
{
    // The same experiment against the hybrid queue: windows are
    // anchored in dispatch order, so A sits at a fixed distance from
    // B regardless of completion order (the paper's §5 argument).
    HgvqScheme s(smallConfig());
    auto [predicted, correct] = reorderExperiment(s);
    ASSERT_GT(predicted, 40u);
    EXPECT_GT(correct, predicted * 9 / 10);
}

TEST(Hgvq, FillerCarriesLocallyPredictableCorrelates)
{
    // A is in flight at B's dispatch (writebacks arrive after both
    // dispatches). A is locally stride-predictable, so the filler
    // stands in for it and B's gdiff prediction still lands.
    HgvqScheme s(smallConfig());
    unsigned correct = 0, predicted = 0;
    for (int i = 0; i < 40; ++i) {
        int64_t a = 50 * i; // strided
        VpDecision da = s.predictAtDispatch(pcA);
        VpDecision db = s.predictAtDispatch(pcB); // A still in flight
        if (i > 10 && db.predicted) {
            ++predicted;
            correct += (db.value == a + 9);
        }
        s.writeback(pcA, da, a);
        s.writeback(pcB, db, a + 9);
    }
    ASSERT_GT(predicted, 20u);
    EXPECT_GT(correct, predicted * 9 / 10);
}

TEST(Hgvq, StatsExposeBothComponents)
{
    HgvqScheme s(smallConfig());
    for (int i = 0; i < 30; ++i) {
        VpDecision d = s.predictAtDispatch(pcA);
        s.writeback(pcA, d, 3 * i);
    }
    EXPECT_GT(s.coverage().value(), 0.5);
    EXPECT_GT(s.gatedAccuracy().value(), 0.9);
}

} // namespace
} // namespace pipeline
} // namespace gdiff
