/**
 * @file
 * Cache-model tests: geometry, hit/miss classification, LRU
 * replacement, and the paper Table 1 configurations.
 */

#include <gtest/gtest.h>

#include "mem/cache.hh"

namespace gdiff {
namespace mem {
namespace {

CacheConfig
tinyCache(unsigned assoc)
{
    CacheConfig c;
    c.name = "tiny";
    c.sizeBytes = 4 * 64 * assoc; // 4 sets
    c.assoc = assoc;
    c.lineBytes = 64;
    c.hitLatency = 1;
    c.missPenalty = 10;
    return c;
}

TEST(Cache, ColdMissThenHit)
{
    Cache c(tinyCache(2));
    EXPECT_FALSE(c.access(0x1000));
    EXPECT_TRUE(c.access(0x1000));
    EXPECT_TRUE(c.access(0x1038)); // same 64B line
    EXPECT_EQ(c.accesses(), 3u);
    EXPECT_EQ(c.misses(), 1u);
}

TEST(Cache, DistinctLinesMissSeparately)
{
    Cache c(tinyCache(2));
    EXPECT_FALSE(c.access(0x1000));
    EXPECT_FALSE(c.access(0x1040));
    EXPECT_TRUE(c.access(0x1000));
    EXPECT_TRUE(c.access(0x1040));
}

TEST(Cache, LruEviction)
{
    // 2-way, 4 sets: three lines mapping to set 0 thrash one set.
    Cache c(tinyCache(2));
    uint64_t a = 0x0000, b = 0x0100, d = 0x0200; // all set 0
    c.access(a);
    c.access(b);
    c.access(a);        // a is MRU, b is LRU
    c.access(d);        // evicts b
    EXPECT_TRUE(c.probe(a));
    EXPECT_FALSE(c.probe(b));
    EXPECT_TRUE(c.probe(d));
}

TEST(Cache, ProbeDoesNotAllocate)
{
    Cache c(tinyCache(2));
    EXPECT_FALSE(c.probe(0x4000));
    EXPECT_FALSE(c.probe(0x4000));
    EXPECT_EQ(c.accesses(), 0u);
    EXPECT_FALSE(c.access(0x4000));
}

TEST(Cache, LatencyPerConfig)
{
    Cache c(tinyCache(2));
    EXPECT_EQ(c.latency(true), 1u);
    EXPECT_EQ(c.latency(false), 11u);
}

TEST(Cache, MissRate)
{
    Cache c(tinyCache(2));
    c.access(0x1000);
    c.access(0x1000);
    c.access(0x1000);
    c.access(0x1000);
    EXPECT_DOUBLE_EQ(c.missRate(), 0.25);
}

TEST(Cache, ResetClearsEverything)
{
    Cache c(tinyCache(2));
    c.access(0x1000);
    c.reset();
    EXPECT_EQ(c.accesses(), 0u);
    EXPECT_FALSE(c.probe(0x1000));
}

TEST(Cache, FullyAssociativeSingleSet)
{
    CacheConfig cfg;
    cfg.sizeBytes = 256;
    cfg.assoc = 4;
    cfg.lineBytes = 64; // exactly one set
    Cache c(cfg);
    for (uint64_t i = 0; i < 4; ++i)
        EXPECT_FALSE(c.access(i * 0x1000));
    for (uint64_t i = 0; i < 4; ++i)
        EXPECT_TRUE(c.access(i * 0x1000));
    EXPECT_FALSE(c.access(5 * 0x1000)); // evicts line 0 (LRU)
    EXPECT_FALSE(c.probe(0));
}

TEST(Cache, PaperConfigs)
{
    CacheConfig ic = CacheConfig::paperICache();
    EXPECT_EQ(ic.sizeBytes, 64u * 1024);
    EXPECT_EQ(ic.assoc, 4u);
    EXPECT_EQ(ic.lineBytes, 64u);
    EXPECT_EQ(ic.missPenalty, 12u);

    CacheConfig dc = CacheConfig::paperDCache();
    EXPECT_EQ(dc.missPenalty, 14u);
    EXPECT_EQ(dc.hitLatency, 2u);

    // Both must construct cleanly.
    Cache i(ic), d(dc);
    EXPECT_FALSE(i.access(0x400000));
    SUCCEED();
}

TEST(CacheDeath, NonPowerOfTwoRejected)
{
    CacheConfig cfg;
    cfg.sizeBytes = 3000;
    EXPECT_DEATH(Cache c(cfg), "powers of two");
}

TEST(Cache, StreamingWorkingSetLargerThanCache)
{
    // Sequential streaming over 4x the cache size must miss once per
    // line and never hit on the second pass (LRU worst case).
    Cache c(tinyCache(4));
    uint64_t size = c.config().sizeBytes;
    uint64_t span = size * 4;
    for (uint64_t pass = 0; pass < 2; ++pass)
        for (uint64_t a = 0; a < span; a += 64)
            c.access(a);
    EXPECT_EQ(c.misses(), c.accesses());
}

} // namespace
} // namespace mem
} // namespace gdiff
