/**
 * @file
 * Serving-layer tests: wire framing edge cases over socketpairs, and
 * the gdiffd daemon end-to-end over a real Unix-domain socket —
 * bit-identity with in-process execution, the shared trace cache,
 * backpressure rejections, hostile-input survival, and queue-slot
 * reclamation when a client vanishes mid-sweep.
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <chrono>
#include <cstdint>
#include <cstring>
#include <string>
#include <thread>
#include <vector>

#include <sys/socket.h>
#include <unistd.h>

#include "obs/obs.hh"
#include "runner/runner.hh"
#include "runner/sinks.hh"
#include "runner/sweep_spec.hh"
#include "sample/sample.hh"
#include "serve/client.hh"
#include "serve/daemon.hh"
#include "serve/protocol.hh"
#include "serve/socket.hh"
#include "util/simd.hh"

using namespace gdiff;
using namespace gdiff::serve;

namespace {

/** A fresh, short socket path per test (AF_UNIX paths are ~100 chars). */
std::string
testSocketPath()
{
    static int counter = 0;
    return "/tmp/gdiff_ts." + std::to_string(getpid()) + "." +
           std::to_string(++counter) + ".sock";
}

/** Connected stream socket pair; both ends closed by Fd. */
struct Pair
{
    Fd a, b;
    Pair()
    {
        int fds[2] = {-1, -1};
        EXPECT_EQ(socketpair(AF_UNIX, SOCK_STREAM, 0, fds), 0);
        a = Fd(fds[0]);
        b = Fd(fds[1]);
    }
};

/** Poll the daemon until its queue fully empties (or 5s pass). */
bool
waitForIdle(const Daemon &daemon)
{
    for (int i = 0; i < 500; ++i) {
        DaemonStats s = daemon.stats();
        if (s.queuedJobs == 0 && s.runningJobs == 0)
            return true;
        std::this_thread::sleep_for(std::chrono::milliseconds(10));
    }
    return false;
}

constexpr const char *kSmallGrid =
    "workload=micro.stride,micro.periodic;predictor=stride,gdiff";
constexpr uint64_t kSmallInstructions = 20000;
constexpr uint64_t kSmallWarmup = 2000;

/** Submit kSmallGrid and collect the deterministic payload lines. */
std::vector<std::string>
submitSmallGrid(Client &client, const std::string &name,
                SweepOutcome *outcome = nullptr)
{
    SubmitRequest req;
    req.grid = kSmallGrid;
    req.client = name;
    req.instructions = kSmallInstructions;
    req.warmup = kSmallWarmup;
    std::string error;
    std::vector<std::string> lines;
    if (!client.submit(req, &error)) {
        ADD_FAILURE() << "submit failed: " << error;
        return lines; // streaming would block on a dead sweep
    }
    EXPECT_TRUE(client.streamResults(
        [&](const runner::JobRecord &rec) {
            lines.push_back(runner::JsonlSink::deterministicJson(rec));
        },
        outcome, &error))
        << error;
    std::sort(lines.begin(), lines.end());
    return lines;
}

} // namespace

// ------------------------------------------------------- framing

TEST(FramingTest, RoundTripsPayloads)
{
    Pair p;
    std::string payload;
    for (const std::string msg :
         {std::string(""), std::string("{}"),
          std::string(1000, 'x')}) {
        ASSERT_TRUE(writeFrame(p.a.get(), msg));
        ASSERT_EQ(readFrame(p.b.get(), payload), FrameStatus::Ok);
        EXPECT_EQ(payload, msg);
    }
}

TEST(FramingTest, BackToBackFramesStaySeparate)
{
    Pair p;
    ASSERT_TRUE(writeFrame(p.a.get(), "first"));
    ASSERT_TRUE(writeFrame(p.a.get(), "second"));
    std::string payload;
    ASSERT_EQ(readFrame(p.b.get(), payload), FrameStatus::Ok);
    EXPECT_EQ(payload, "first");
    ASSERT_EQ(readFrame(p.b.get(), payload), FrameStatus::Ok);
    EXPECT_EQ(payload, "second");
}

TEST(FramingTest, CleanCloseBetweenFramesIsEof)
{
    Pair p;
    p.a.reset();
    std::string payload;
    EXPECT_EQ(readFrame(p.b.get(), payload), FrameStatus::Eof);
}

TEST(FramingTest, TruncatedPrefixIsTruncated)
{
    Pair p;
    const char twoBytes[2] = {0x10, 0x00};
    ASSERT_EQ(send(p.a.get(), twoBytes, 2, 0), 2);
    p.a.reset();
    std::string payload;
    EXPECT_EQ(readFrame(p.b.get(), payload), FrameStatus::Truncated);
}

TEST(FramingTest, TruncatedPayloadIsTruncated)
{
    Pair p;
    const unsigned char frame[7] = {16, 0, 0, 0, 'a', 'b', 'c'};
    ASSERT_EQ(send(p.a.get(), frame, 7, 0), 7);
    p.a.reset();
    std::string payload;
    EXPECT_EQ(readFrame(p.b.get(), payload), FrameStatus::Truncated);
}

TEST(FramingTest, OversizedPrefixRejectedBeforePayload)
{
    Pair p;
    // 0xFFFFFFFF bytes claimed; nothing sent after the prefix. The
    // reader must reject on the prefix alone, without blocking to
    // drain 4 GiB.
    const unsigned char prefix[4] = {0xFF, 0xFF, 0xFF, 0xFF};
    ASSERT_EQ(send(p.a.get(), prefix, 4, 0), 4);
    std::string payload;
    EXPECT_EQ(readFrame(p.b.get(), payload), FrameStatus::TooLarge);
}

TEST(FramingTest, WriterRefusesOversizedPayload)
{
    Pair p;
    std::string big(2048, 'y');
    EXPECT_FALSE(writeFrame(p.a.get(), big, /*maxBytes=*/1024));
    // Nothing must have hit the wire: the reader would otherwise
    // desynchronize.
    ASSERT_TRUE(writeFrame(p.a.get(), "ok", 1024));
    std::string payload;
    ASSERT_EQ(readFrame(p.b.get(), payload), FrameStatus::Ok);
    EXPECT_EQ(payload, "ok");
}

// ----------------------------------------------------- job frames

TEST(JobFrameTest, RecordSurvivesTheWireExactly)
{
    runner::JobSpec spec;
    spec.workload = "micro.stride";
    spec.predictor = "gdiff";
    spec.order = 4;
    spec.instructions = 1000;
    spec.warmup = 100;
    runner::JobResult res;
    res.metrics = {{"accuracy", 0.123456789012345678},
                   {"coverage", 1.0 / 3.0}};
    res.wallSeconds = 0.5;
    runner::JobRecord rec{7, spec, res};

    json::Value frame;
    std::string error;
    ASSERT_TRUE(json::parse(jobMessage(3, rec), frame, &error))
        << error;
    runner::JobRecord back;
    ASSERT_TRUE(parseJobFrame(frame, back, &error)) << error;
    // %.17g doubles round-trip exactly, so the deterministic JSON is
    // byte-equal — the property the daemon's bit-identity rests on.
    EXPECT_EQ(runner::JsonlSink::deterministicJson(back),
              runner::JsonlSink::deterministicJson(rec));
}

TEST(JobFrameTest, SampledRecordSurvivesTheWireExactly)
{
    // A sampled job's spec carries the sample_* knobs and its metrics
    // carry interval columns; both must survive the frame round trip
    // so remote sampled sweeps diff cleanly against local ones.
    runner::JobSpec spec;
    spec.workload = "micro.stride";
    spec.predictor = "gdiff";
    spec.instructions = 100000;
    spec.warmup = 20000;
    spec.sampleBudget = 30000;
    spec.sampleWindow = 4096;
    spec.sampleSeed = 3;
    runner::JobResult res;
    res.metrics = {{"accuracy", 0.125},
                   {"accuracy_ci_lo", 0.121},
                   {"accuracy_ci_hi", 0.129}};
    runner::JobRecord rec{2, spec, res};

    std::string line = runner::JsonlSink::deterministicJson(rec);
    ASSERT_NE(line.find("\"sample_budget\":30000"),
              std::string::npos);

    json::Value frame;
    std::string error;
    ASSERT_TRUE(json::parse(jobMessage(1, rec), frame, &error))
        << error;
    runner::JobRecord back;
    ASSERT_TRUE(parseJobFrame(frame, back, &error)) << error;
    EXPECT_TRUE(back.spec.sampled());
    EXPECT_EQ(back.spec.key(), rec.spec.key());
    EXPECT_EQ(runner::JsonlSink::deterministicJson(back), line);
}

TEST(JobFrameTest, PartialSampleFieldsAreRejected)
{
    // A frame carrying sample_budget without its companion fields is
    // malformed — parse must fail with a message, not guess defaults.
    runner::JobSpec spec;
    spec.sampleBudget = 1000;
    runner::JobRecord rec{0, spec, runner::JobResult{}};
    std::string msg = jobMessage(1, rec);
    size_t pos = msg.find(",\"sample_window\":4096");
    ASSERT_NE(pos, std::string::npos);
    msg.erase(pos, strlen(",\"sample_window\":4096"));

    json::Value frame;
    ASSERT_TRUE(json::parse(msg, frame));
    runner::JobRecord back;
    std::string error;
    EXPECT_FALSE(parseJobFrame(frame, back, &error));
    EXPECT_NE(error.find("sample"), std::string::npos) << error;
}

// ------------------------------------------------------- daemon

TEST(DaemonTest, ResultsBitIdenticalToInProcessSweep)
{
    DaemonConfig cfg;
    cfg.socketPath = testSocketPath();
    cfg.workers = 2;
    Daemon daemon(cfg);
    std::string error;
    ASSERT_TRUE(daemon.start(&error)) << error;

    Client client;
    ASSERT_TRUE(client.connect(cfg.socketPath, &error)) << error;
    SweepOutcome outcome;
    std::vector<std::string> daemonLines =
        submitSmallGrid(client, "bitident", &outcome);

    // The same grid, in-process, through the stock runner.
    runner::SweepSpec spec =
        runner::SweepSpec::parseGrid(kSmallGrid);
    spec.defaultInstructions = kSmallInstructions;
    spec.warmup = kSmallWarmup;
    runner::SweepRunner sweep(spec);
    runner::CollectingSink collect;
    sweep.addSink(collect);
    runner::SweepOptions opt;
    opt.useTraceCache = false;
    sweep.run(opt);

    std::vector<std::string> localLines;
    for (const auto &rec : collect.records())
        localLines.push_back(
            runner::JsonlSink::deterministicJson(rec));
    std::sort(localLines.begin(), localLines.end());

    EXPECT_EQ(outcome.jobs, localLines.size());
    EXPECT_EQ(daemonLines, localLines);
}

TEST(DaemonTest, SampledResultsBitIdenticalToInProcessSweep)
{
    // A sampled submit must flow through the daemon to the installed
    // sampled runner and come back — sample knobs, point estimates,
    // and CI columns — byte-identical to gdiffrun --sample-budget of
    // the same grid.
    sample::install();
    DaemonConfig cfg;
    cfg.socketPath = testSocketPath();
    cfg.workers = 2;
    Daemon daemon(cfg);
    std::string error;
    ASSERT_TRUE(daemon.start(&error)) << error;

    Client client;
    ASSERT_TRUE(client.connect(cfg.socketPath, &error)) << error;
    SubmitRequest req;
    req.grid = kSmallGrid;
    req.client = "sampled";
    req.instructions = 100000;
    req.warmup = 20000;
    req.sampleBudget = 30000;
    req.sampleWindow = 4096;
    req.sampleSeed = 3;
    ASSERT_TRUE(client.submit(req, &error)) << error;
    std::vector<std::string> daemonLines;
    SweepOutcome outcome;
    ASSERT_TRUE(client.streamResults(
        [&](const runner::JobRecord &rec) {
            EXPECT_TRUE(rec.spec.sampled());
            daemonLines.push_back(
                runner::JsonlSink::deterministicJson(rec));
        },
        &outcome, &error))
        << error;
    std::sort(daemonLines.begin(), daemonLines.end());

    runner::SweepSpec spec =
        runner::SweepSpec::parseGrid(kSmallGrid);
    spec.defaultInstructions = 100000;
    spec.warmup = 20000;
    spec.sampleBudget = 30000;
    spec.sampleWindow = 4096;
    spec.sampleSeed = 3;
    runner::SweepRunner sweep(spec);
    runner::CollectingSink collect;
    sweep.addSink(collect);
    runner::SweepOptions opt;
    opt.useTraceCache = false;
    sweep.run(opt);
    std::vector<std::string> localLines;
    for (const auto &rec : collect.records())
        localLines.push_back(
            runner::JsonlSink::deterministicJson(rec));
    std::sort(localLines.begin(), localLines.end());

    EXPECT_EQ(outcome.jobs, localLines.size());
    EXPECT_EQ(daemonLines, localLines);
    // And the payloads really carried the sampled shape.
    for (const auto &line : daemonLines) {
        EXPECT_NE(line.find("\"sample_budget\":30000"),
                  std::string::npos);
        EXPECT_NE(line.find("_ci_lo"), std::string::npos);
    }
}

TEST(DaemonTest, InvalidSampleSpecGetsAnErrorFrameNotACrash)
{
    sample::install();
    DaemonConfig cfg;
    cfg.socketPath = testSocketPath();
    cfg.workers = 1;
    Daemon daemon(cfg);
    std::string error;
    ASSERT_TRUE(daemon.start(&error)) << error;

    Client client;
    ASSERT_TRUE(client.connect(cfg.socketPath, &error)) << error;

    // Window longer than the measured region: rejected per-spec with
    // a message, never a fatal() inside the daemon.
    SubmitRequest req;
    req.grid = "workload=micro.stride;predictor=stride";
    req.instructions = 50000;
    req.warmup = 10000;
    req.sampleBudget = 20000;
    req.sampleWindow = 60000;
    EXPECT_FALSE(client.submit(req, &error));
    EXPECT_NE(error.find("longer than the measured region"),
              std::string::npos)
        << error;

    // Mistyped sample fields in a hand-rolled frame get an error
    // frame too, and the connection survives both rejections.
    ASSERT_TRUE(writeFrame(
        client.fd(),
        "{\"type\":\"submit\",\"grid\":\"workload=micro.stride;"
        "predictor=stride\",\"sample_budget\":\"lots\"}"));
    std::string payload;
    ASSERT_EQ(readFrame(client.fd(), payload), FrameStatus::Ok);
    EXPECT_NE(payload.find("\"error\""), std::string::npos);
    EXPECT_NE(payload.find("sample_budget"), std::string::npos);

    EXPECT_TRUE(client.ping(&error)) << error;

    // A valid sampled submit still works on the same connection.
    req.sampleWindow = 4096;
    req.sampleBudget = 20000;
    EXPECT_TRUE(client.submit(req, &error)) << error;
    EXPECT_TRUE(client.streamResults(nullptr, nullptr, &error))
        << error;
}

TEST(DaemonTest, SecondClientIsServedEntirelyFromTheSharedCache)
{
    DaemonConfig cfg;
    cfg.socketPath = testSocketPath();
    cfg.workers = 2;
    Daemon daemon(cfg);
    std::string error;
    ASSERT_TRUE(daemon.start(&error)) << error;

    Client first;
    ASSERT_TRUE(first.connect(cfg.socketPath, &error)) << error;
    SweepOutcome coldOutcome;
    std::vector<std::string> coldLines =
        submitSmallGrid(first, "cold", &coldOutcome);
    uint64_t generationsAfterFirst =
        daemon.stats().traceCache.generations;
    EXPECT_GT(generationsAfterFirst, 0u);

    Client second;
    ASSERT_TRUE(second.connect(cfg.socketPath, &error)) << error;
    SweepOutcome warmOutcome;
    std::vector<std::string> warmLines =
        submitSmallGrid(second, "warm", &warmOutcome);

    // Identical results, and not one new trace materialization: every
    // warm job replayed out of the daemon-lifetime cache.
    EXPECT_EQ(warmLines, coldLines);
    EXPECT_EQ(daemon.stats().traceCache.generations,
              generationsAfterFirst);
    EXPECT_EQ(warmOutcome.generated, 0u);
    EXPECT_EQ(warmOutcome.replayed, warmOutcome.jobs);
}

TEST(DaemonTest, OversweepIsRejectedWithBackpressure)
{
    DaemonConfig cfg;
    cfg.socketPath = testSocketPath();
    cfg.workers = 1;
    cfg.maxQueuedJobs = 2;
    Daemon daemon(cfg);
    std::string error;
    ASSERT_TRUE(daemon.start(&error)) << error;

    Client client;
    ASSERT_TRUE(client.connect(cfg.socketPath, &error)) << error;

    // 4 jobs against a 2-slot queue: rejected outright, whatever the
    // workers are doing.
    SubmitRequest req;
    req.grid = "workload=micro.stride;predictor=stride,gdiff;"
               "order=2,4";
    req.instructions = kSmallInstructions;
    req.warmup = kSmallWarmup;
    EXPECT_FALSE(client.submit(req, &error));
    EXPECT_NE(error.find("queue full"), std::string::npos) << error;
    EXPECT_EQ(daemon.stats().rejectedSweeps, 1u);

    // The connection survives a rejection, and a sweep that fits is
    // accepted on it.
    req.grid = "workload=micro.stride;predictor=stride";
    EXPECT_TRUE(client.submit(req, &error)) << error;
    EXPECT_TRUE(client.streamResults(nullptr, nullptr, &error))
        << error;
}

TEST(DaemonTest, GarbageJsonGetsAnErrorAndTheConnectionSurvives)
{
    DaemonConfig cfg;
    cfg.socketPath = testSocketPath();
    cfg.workers = 1;
    Daemon daemon(cfg);
    std::string error;
    ASSERT_TRUE(daemon.start(&error)) << error;

    Client client;
    ASSERT_TRUE(client.connect(cfg.socketPath, &error)) << error;

    // Valid framing, garbage payload: the daemon answers with an
    // error frame and keeps the connection.
    ASSERT_TRUE(writeFrame(client.fd(), "not json at all"));
    std::string payload;
    ASSERT_EQ(readFrame(client.fd(), payload), FrameStatus::Ok);
    EXPECT_NE(payload.find("\"error\""), std::string::npos);
    EXPECT_NE(payload.find("invalid JSON"), std::string::npos);

    // Ditto a well-formed frame of the wrong shape.
    ASSERT_TRUE(writeFrame(client.fd(), "[1,2,3]"));
    ASSERT_EQ(readFrame(client.fd(), payload), FrameStatus::Ok);
    EXPECT_NE(payload.find("\"error\""), std::string::npos);

    // And an unknown workload in an otherwise valid submit.
    ASSERT_TRUE(writeFrame(
        client.fd(),
        "{\"type\":\"submit\",\"grid\":\"workload=nope;"
        "predictor=stride\"}"));
    ASSERT_EQ(readFrame(client.fd(), payload), FrameStatus::Ok);
    EXPECT_NE(payload.find("unknown workload"), std::string::npos);

    EXPECT_TRUE(client.ping(&error)) << error;
}

TEST(DaemonTest, OversizedPrefixDropsOnlyThatClient)
{
    DaemonConfig cfg;
    cfg.socketPath = testSocketPath();
    cfg.workers = 1;
    Daemon daemon(cfg);
    std::string error;
    ASSERT_TRUE(daemon.start(&error)) << error;

    Client hostile;
    ASSERT_TRUE(hostile.connect(cfg.socketPath, &error)) << error;
    const unsigned char prefix[4] = {0xFF, 0xFF, 0xFF, 0x7F};
    ASSERT_EQ(send(hostile.fd(), prefix, 4, MSG_NOSIGNAL), 4);
    // The daemon explains, then hangs up on the desynchronized peer.
    std::string payload;
    ASSERT_EQ(readFrame(hostile.fd(), payload), FrameStatus::Ok);
    EXPECT_NE(payload.find("exceeds limit"), std::string::npos);
    EXPECT_EQ(readFrame(hostile.fd(), payload), FrameStatus::Eof);

    // Everyone else is unaffected.
    Client polite;
    ASSERT_TRUE(polite.connect(cfg.socketPath, &error)) << error;
    EXPECT_TRUE(polite.ping(&error)) << error;
}

TEST(DaemonTest, DisconnectMidSweepFreesEveryQueueSlot)
{
    DaemonConfig cfg;
    cfg.socketPath = testSocketPath();
    cfg.workers = 1;
    cfg.maxQueuedJobs = 64;
    Daemon daemon(cfg);
    std::string error;
    ASSERT_TRUE(daemon.start(&error)) << error;

    {
        Client doomed;
        ASSERT_TRUE(doomed.connect(cfg.socketPath, &error)) << error;
        SubmitRequest req;
        req.grid = "workload=micro.stride,micro.periodic;"
                   "predictor=stride,gdiff,dfcm;order=2,4";
        req.instructions = 100000;
        req.warmup = 10000;
        ASSERT_TRUE(doomed.submit(req, &error)) << error;
        // Vanish without reading a single result.
        doomed.close();
    }

    // Every admitted slot must come back — the purge happens on the
    // reader's disconnect, the in-flight job just finishes.
    ASSERT_TRUE(waitForIdle(daemon));
    DaemonStats s = daemon.stats();
    EXPECT_EQ(s.queuedJobs, 0u);
    EXPECT_EQ(s.runningJobs, 0u);
    EXPECT_EQ(s.completedJobs + s.droppedJobs, 12u);

    // And the daemon still serves a full sweep afterwards.
    Client next;
    ASSERT_TRUE(next.connect(cfg.socketPath, &error)) << error;
    SweepOutcome outcome;
    submitSmallGrid(next, "survivor", &outcome);
    EXPECT_EQ(outcome.jobs, 4u);
}

TEST(DaemonTest, SignalDrainWakesAnAlreadyIdleWaiter)
{
    // gdiffd's main thread blocks in waitUntilDrained *before* any
    // drain is requested. When the signal lands while the daemon is
    // idle — no queued or running jobs to finish and re-test the
    // predicate — requestDrain itself must wake the waiter, or the
    // process hangs forever on a clean SIGTERM.
    DaemonConfig cfg;
    cfg.socketPath = testSocketPath();
    cfg.workers = 2;
    Daemon daemon(cfg);
    std::string error;
    ASSERT_TRUE(daemon.start(&error)) << error;

    std::thread waiter([&] { daemon.waitUntilDrained(); });
    // Let the waiter actually park on the drain condition first.
    std::this_thread::sleep_for(std::chrono::milliseconds(50));
    daemon.requestDrain();
    waiter.join(); // hangs (test times out) if the notify is missing
}

TEST(DaemonTest, DrainFinishesAdmittedWorkThenRefusesNew)
{
    DaemonConfig cfg;
    cfg.socketPath = testSocketPath();
    cfg.workers = 1;
    Daemon daemon(cfg);
    std::string error;
    ASSERT_TRUE(daemon.start(&error)) << error;

    Client client;
    ASSERT_TRUE(client.connect(cfg.socketPath, &error)) << error;
    SubmitRequest req;
    req.grid = kSmallGrid;
    req.instructions = kSmallInstructions;
    req.warmup = kSmallWarmup;
    ASSERT_TRUE(client.submit(req, &error)) << error;

    // Drain while the sweep is (likely) still queued: every admitted
    // job must still stream out, ending in sweep_done.
    daemon.requestDrain();
    SweepOutcome outcome;
    EXPECT_TRUE(client.streamResults(nullptr, &outcome, &error))
        << error;
    EXPECT_EQ(outcome.jobs, 4u);

    // Post-drain submits are refused politely.
    EXPECT_FALSE(client.submit(req, &error));
    EXPECT_NE(error.find("draining"), std::string::npos) << error;

    daemon.waitUntilDrained();
    EXPECT_EQ(daemon.stats().completedJobs, 4u);
}

TEST(DaemonTest, StatusReportsCacheAndLatencyHistograms)
{
    // The latency sections come from the obs histograms, which the
    // daemon only populates when the runtime gate is on (gdiffd
    // enables it at startup; tests must too).
    obs::setEnabled(true);
    DaemonConfig cfg;
    cfg.socketPath = testSocketPath();
    cfg.workers = 1;
    Daemon daemon(cfg);
    std::string error;
    ASSERT_TRUE(daemon.start(&error)) << error;

    Client client;
    ASSERT_TRUE(client.connect(cfg.socketPath, &error)) << error;
    submitSmallGrid(client, "statuser");

    std::string statusJson;
    ASSERT_TRUE(client.status(&statusJson, &error)) << error;
    json::Value doc;
    ASSERT_TRUE(json::parse(statusJson, doc, &error)) << error;
    const json::Value *cacheDoc = doc.find("trace_cache");
    ASSERT_NE(cacheDoc, nullptr);
    EXPECT_GE(cacheDoc->find("generations")->number, 1.0);
    const json::Value *jobMs = doc.find("job_ms");
    ASSERT_NE(jobMs, nullptr);
    EXPECT_EQ(jobMs->find("count")->number, 4.0);
    EXPECT_GE(jobMs->find("p99_ms")->number,
              jobMs->find("p50_ms")->number);
    // The batch-kernel dispatch decision is process-wide; status
    // must report the same name the obs counters use.
    const json::Value *simdField = doc.find("simd_dispatch");
    ASSERT_NE(simdField, nullptr);
    EXPECT_EQ(simdField->str, simd::activeName());
}
