/**
 * @file
 * Batch-protocol identity tests: every batched entry point must be
 * bit-identical to the scalar predict()/update() specification.
 *
 * The heavy lifting is check::diffScalarVsBatch — the same machinery
 * gdifffuzz --batch drives — run here over every batched family, a
 * spread of chunk sizes (1 record, a prime, SIMD-width multiples, a
 * full trace chunk), and both SIMD kernel sets. The remaining tests
 * pin the protocol pieces the differ does not reach: predict-only and
 * update-only batches, the chunk-gathering wrappers, the confidence
 * table's fused gate-and-train, and the Markov address predictor.
 */

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "check/differ.hh"
#include "check/fuzzer.hh"
#include "check/reference.hh"
#include "predictors/confidence.hh"
#include "predictors/markov.hh"
#include "predictors/stride.hh"
#include "predictors/value_predictor.hh"
#include "util/random.hh"
#include "util/simd.hh"
#include "workload/trace.hh"

namespace gdiff {
namespace {

/** Force a kernel set for one scope; restores the CPU default. */
class ScopedSimdMode
{
  public:
    explicit ScopedSimdMode(simd::Mode m) { simd::setModeForTest(m); }
    ~ScopedSimdMode()
    {
        simd::setModeForTest(simd::cpuSupportsAvx2()
                                 ? simd::Mode::Avx2
                                 : simd::Mode::Scalar);
    }
};

std::vector<check::FuzzRecord>
testStream(uint64_t seed, uint64_t records = 6000)
{
    check::FuzzStreamConfig cfg;
    cfg.seed = seed;
    cfg.records = records;
    return check::fuzzValueStream(cfg);
}

void
diffAllFamilies(simd::Mode mode)
{
    if (mode == simd::Mode::Avx2 && !simd::cpuSupportsAvx2())
        GTEST_SKIP() << "no AVX2 on this host";
    ScopedSimdMode scoped(mode);
    const auto stream = testStream(101);
    const uint32_t chunkLanes[] = {1, 7, 1024,
                                   workload::TraceChunk::capacity};
    for (const auto &family : check::batchFamilyNames()) {
        for (uint32_t lanes : chunkLanes) {
            auto scalar = check::makeProduction(family);
            auto batch = check::makeProduction(family);
            auto div = check::diffScalarVsBatch(*scalar, *batch,
                                                stream, lanes);
            EXPECT_FALSE(div.has_value())
                << family << " lanes=" << lanes << ": "
                << (div ? div->describe() : "");
        }
    }
}

TEST(BatchIdentity, AllFamiliesAvx2)
{
    diffAllFamilies(simd::Mode::Avx2);
}

TEST(BatchIdentity, AllFamiliesScalarKernels)
{
    diffAllFamilies(simd::Mode::Scalar);
}

// The differ exercises the fused predictUpdateBatch; predict-only and
// update-only batches are separate virtual entry points with their
// own overrides, so pin them directly against the scalar calls.
TEST(BatchIdentity, PredictBatchAndUpdateBatchMatchScalar)
{
    const auto stream = testStream(202, 4000);
    std::vector<uint64_t> pcs;
    std::vector<int64_t> vals;
    for (const auto &r : stream) {
        pcs.push_back(r.pc);
        vals.push_back(r.value);
    }
    for (const auto &family : check::batchFamilyNames()) {
        auto a = check::makeProduction(family);
        auto b = check::makeProduction(family);
        const uint32_t n = static_cast<uint32_t>(pcs.size());
        // Train both halves identically, batch vs scalar.
        a->updateBatch(pcs.data(), vals.data(), n / 2);
        for (uint32_t l = 0; l < n / 2; ++l)
            b->update(pcs[l], vals[l]);
        // Predict-only over the second half: no training between
        // lanes, so every lane must match the scalar predict().
        predictors::PredictionBatch out;
        a->predictBatch(pcs.data() + n / 2, n - n / 2, out);
        for (uint32_t l = 0; l < n - n / 2; ++l) {
            int64_t v = 0;
            bool p = b->predict(pcs[n / 2 + l], v);
            ASSERT_EQ(p, out.predicted[l] != 0)
                << family << " lane " << l;
            if (p)
                ASSERT_EQ(v, out.value[l]) << family << " lane " << l;
        }
    }
}

// Chunk wrappers gather only the value-producing records into dense
// lanes and record the chunk index of each lane.
TEST(BatchIdentity, ChunkWrappersGatherValueLanes)
{
    workload::TraceChunk chunk;
    chunk.clear();
    Xorshift64Star rng(7);
    std::vector<uint32_t> producing;
    chunk.size = 512;
    for (uint32_t i = 0; i < chunk.size; ++i) {
        chunk.pc[i] = 0x1000 + (i % 37) * 4;
        chunk.value[i] = static_cast<int64_t>(rng.next() >> 4);
        bool produces = (rng.next() & 3) != 0;
        chunk.flags[i] =
            produces ? workload::TraceChunk::flagProducesValue : 0;
        if (produces)
            producing.push_back(i);
    }

    predictors::StridePredictor batch(0);
    predictors::StridePredictor scalar(0);
    predictors::PredictionBatch out;
    batch.predictUpdateChunk(chunk, out);

    ASSERT_EQ(out.lanes(), producing.size());
    ASSERT_EQ(out.record.size(), producing.size());
    for (size_t l = 0; l < producing.size(); ++l) {
        const uint32_t i = producing[l];
        ASSERT_EQ(out.record[l], i);
        int64_t v = 0;
        bool p = scalar.predict(chunk.pc[i], v);
        ASSERT_EQ(p, out.predicted[l] != 0) << "lane " << l;
        if (p)
            ASSERT_EQ(v, out.value[l]) << "lane " << l;
        scalar.update(chunk.pc[i], chunk.value[i]);
    }

    // updateChunk with an explicit actuals span (the address-study
    // path) trains on the supplied values, not the chunk column.
    std::vector<int64_t> addrs(producing.size());
    for (size_t l = 0; l < addrs.size(); ++l)
        addrs[l] = static_cast<int64_t>(0x80000 + 64 * l);
    predictors::StridePredictor batch2(0);
    predictors::StridePredictor scalar2(0);
    batch2.updateChunk(chunk, addrs);
    for (size_t l = 0; l < producing.size(); ++l)
        scalar2.update(chunk.pc[producing[l]], addrs[l]);
    for (size_t l = 0; l < producing.size(); ++l) {
        int64_t a = 0, b = 0;
        bool pa = scalar2.predict(chunk.pc[producing[l]], a);
        bool pb = batch2.predict(chunk.pc[producing[l]], b);
        ASSERT_EQ(pa, pb);
        if (pa)
            ASSERT_EQ(a, b);
    }
}

TEST(BatchIdentity, ConfidenceEvaluateBatchMatchesScalar)
{
    predictors::ConfidenceTable a;
    predictors::ConfidenceTable b;
    Xorshift64Star rng(17);
    constexpr uint32_t kLanes = 2048;
    std::vector<uint64_t> pcs(kLanes);
    std::vector<uint8_t> predicted(kLanes), correct(kLanes);
    std::vector<uint8_t> conf(kLanes, 0xee);
    for (uint32_t l = 0; l < kLanes; ++l) {
        pcs[l] = 0x2000 + (rng.next() % 64) * 4;
        predicted[l] = (rng.next() & 7) != 0;
        correct[l] = (rng.next() & 1) != 0;
    }
    a.evaluateBatch(pcs.data(), predicted.data(), correct.data(),
                    kLanes, conf.data());
    for (uint32_t l = 0; l < kLanes; ++l) {
        uint8_t expect = 0;
        if (predicted[l]) {
            expect = b.confident(pcs[l]) ? 1 : 0;
            b.train(pcs[l], correct[l] != 0);
        }
        ASSERT_EQ(conf[l], expect) << "lane " << l;
    }
    // Post-state identity: counters agree per PC.
    for (uint32_t k = 0; k < 64; ++k)
        ASSERT_EQ(a.level(0x2000 + k * 4), b.level(0x2000 + k * 4));
}

TEST(BatchIdentity, MarkovFusedBatchMatchesScalar)
{
    predictors::MarkovPredictor a(4096, 4);
    predictors::MarkovPredictor b(4096, 4);
    Xorshift64Star rng(23);
    constexpr uint32_t kLanes = 4096;
    // Address stream with recurring chains plus noise, chunked in
    // awkward block sizes.
    std::vector<uint64_t> addrs(kLanes);
    for (uint32_t l = 0; l < kLanes; ++l) {
        if (rng.next() & 1)
            addrs[l] = 0x10000 + (l % 97) * 64;
        else
            addrs[l] = rng.next() & ~0x3full;
    }
    std::vector<uint8_t> hits(kLanes, 0);
    std::vector<uint64_t> guesses(kLanes, 0);
    for (uint32_t base = 0; base < kLanes;) {
        uint32_t n = std::min<uint32_t>(77, kLanes - base);
        a.predictUpdateBatch(addrs.data() + base, n,
                             hits.data() + base,
                             guesses.data() + base);
        base += n;
    }
    for (uint32_t l = 0; l < kLanes; ++l) {
        uint64_t guess = 0;
        bool hit = b.predict(guess);
        b.update(addrs[l]);
        ASSERT_EQ(hit, hits[l] != 0) << "lane " << l;
        if (hit)
            ASSERT_EQ(guess, guesses[l]) << "lane " << l;
    }
}

} // namespace
} // namespace gdiff
