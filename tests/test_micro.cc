/**
 * @file
 * Micro-workload tests: each single-locality stream must be
 * near-perfect for exactly its home predictor and near-useless for
 * the predictors it excludes — the ground truth the mixed kernels
 * are composed from.
 */

#include <gtest/gtest.h>

#include "core/gdiff.hh"
#include "core/gdiff2.hh"
#include "predictors/fcm.hh"
#include "predictors/stride.hh"
#include "sim/profile.hh"
#include "workload/micro.hh"
#include "workload/workload.hh"

namespace gdiff {
namespace workload {
namespace {

struct MicroAcc
{
    double stride;
    double dfcm;
    double gdiff;
    double gdiff2;
};

MicroAcc
run(const std::string &name)
{
    Workload w = makeWorkload("micro." + name, 1);
    auto exec = w.makeExecutor();
    predictors::StridePredictor stride(0);
    predictors::FcmConfig fcfg;
    fcfg.level1Entries = 0;
    predictors::DfcmPredictor dfcm(fcfg);
    core::GDiffConfig g1;
    g1.order = 8;
    g1.tableEntries = 0;
    core::GDiffPredictor gd(g1);
    core::GDiff2Config g2;
    g2.order = 8;
    g2.tableEntries = 0;
    core::GDiff2Predictor gd2(g2);

    sim::ProfileConfig pcfg;
    pcfg.maxInstructions = 60'000;
    pcfg.warmupInstructions = 10'000;
    sim::ValueProfileRunner runner(pcfg);
    runner.addPredictor(stride);
    runner.addPredictor(dfcm);
    runner.addPredictor(gd);
    runner.addPredictor(gd2);
    runner.run(*exec);
    return MicroAcc{runner.results()[0].accuracyAll.value(),
                    runner.results()[1].accuracyAll.value(),
                    runner.results()[2].accuracyAll.value(),
                    runner.results()[3].accuracyAll.value()};
}

TEST(Micro, StrideStreamsBelongToStride)
{
    MicroAcc a = run("stride");
    EXPECT_GT(a.stride, 0.99);
    EXPECT_GT(a.dfcm, 0.99);  // a constant stride is also a context
    EXPECT_GT(a.gdiff, 0.99); // ...and a self-correlation
}

TEST(Micro, PeriodicStreamsBelongToDfcm)
{
    // The loop scaffolding (phase counter, constants) is predictable
    // by everyone; the +1,+5,-2 value itself only by DFCM, so DFCM
    // must clear stride by a wide margin.
    MicroAcc a = run("periodic");
    EXPECT_GT(a.dfcm, 0.9);
    EXPECT_GT(a.dfcm, a.stride + 0.1);
}

TEST(Micro, SpillFillBelongsToGdiff)
{
    MicroAcc a = run("spillfill");
    EXPECT_LT(a.stride, 0.05);
    EXPECT_LT(a.dfcm, 0.05);
    // 2 of the 4 producers (the fill and its chain) are gdiff food
    EXPECT_NEAR(a.gdiff, 0.5, 0.02);
    EXPECT_GE(a.gdiff2 + 0.01, a.gdiff); // superset
}

TEST(Micro, AffineFieldsBelongToGdiff)
{
    MicroAcc a = run("affine");
    EXPECT_LT(a.stride, 0.35);
    EXPECT_GT(a.gdiff, 0.6); // pick is hard; address+field are exact
}

TEST(Micro, PairSumBelongsToGdiff2Only)
{
    MicroAcc a = run("pairsum");
    EXPECT_LT(a.stride, 0.05);
    // of 6 producers: gdiff gets only the +const chain (1/6);
    // gdiff2 also gets the pair-sum itself (2/6)
    EXPECT_LT(a.gdiff, 0.22);
    EXPECT_GT(a.gdiff2, 0.30);
    EXPECT_GT(a.gdiff2, a.gdiff + 0.12);
}

TEST(Micro, RandomBelongsToNobody)
{
    MicroAcc a = run("random");
    EXPECT_LT(a.stride, 0.02);
    EXPECT_LT(a.dfcm, 0.02);
    EXPECT_LT(a.gdiff, 0.02);
    EXPECT_LT(a.gdiff2, 0.02);
}

TEST(Micro, RegistryRoundTrip)
{
    EXPECT_EQ(microWorkloadNames().size(), 6u);
    for (const auto &n : microWorkloadNames()) {
        Workload w = makeWorkload("micro." + n, 1);
        auto exec = w.makeExecutor();
        TraceRecord r;
        unsigned steps = 0;
        while (steps < 10'000 && exec->next(r))
            ++steps;
        EXPECT_EQ(steps, 10'000u) << n;
    }
}

TEST(MicroDeath, UnknownNameIsFatal)
{
    EXPECT_EXIT(makeMicroWorkload("nonesuch", 1),
                ::testing::ExitedWithCode(1), "unknown micro");
}

} // namespace
} // namespace workload
} // namespace gdiff
