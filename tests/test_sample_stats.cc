/**
 * @file
 * Statistical validation of the sampled simulator against golden
 * full runs (slow; label "slow", excluded by `ctest -LE slow`).
 *
 * Three batteries:
 *
 *  - Containment: for every Table 2 / Fig. 19 cell (workload x
 *    scheme at the golden budget) a small-budget sampled run's IPC
 *    interval — widened 1.5x, roughly a 99.9% interval — must
 *    contain the pinned full-run IPC from tests/golden/. This is
 *    the end-to-end bias check: an estimator or warming bug shows
 *    up as a many-sigma miss, which the widening never absorbs,
 *    while nominal-level sampling variance (a ~95% interval MUST
 *    miss one cell in twenty — demanding all 40 cells inside it
 *    would be flaky by design) stays within the margin. Interval
 *    *calibration* at the nominal level is what the coverage
 *    battery below validates. Reusing the golden files
 *    test_paper_golden pins means a model change that regenerates
 *    them revalidates sampling for free.
 *
 *  - Coverage: across 50 sampling seeds on two kernels, the fraction
 *    of intervals containing the true full-run IPC must reach the
 *    ~95% nominal level (with slack for the finite seed count).
 *    Catching systematic under-coverage is the point: a bias or an
 *    understated variance shows up here as a coverage collapse long
 *    before any single run looks wrong.
 *
 *  - Determinism: a sampled sweep's metrics are bit-identical at 1
 *    and 4 worker threads and across reruns with the same seed.
 *
 * Every run is deterministic (fixed workload seeds, fixed sampling
 * seeds), so these tests either always pass or always fail for a
 * given code state — there is no flake budget.
 */

#include <gtest/gtest.h>

#include <fstream>
#include <map>
#include <sstream>
#include <string>
#include <vector>

#include "runner/runner.hh"
#include "sample/sample.hh"
#include "util/json.hh"
#include "workload/trace_cache.hh"
#include "workload/workload.hh"

using namespace gdiff;

namespace {

// The golden files' budget (see test_paper_golden.cc — the files
// record and verify these, so a mismatch fails loudly there).
constexpr uint64_t kInstructions = 60'000;
constexpr uint64_t kWarmup = 10'000;
constexpr unsigned kOrder = 32;
constexpr uint64_t kTable = 8192;
constexpr uint64_t kSeed = 1;

/// sampled budget for the containment battery: 9 of the region's 15
/// candidate windows
constexpr uint64_t kBudget = 36'864;
constexpr uint64_t kWindow = 4096;

workload::TraceCache &
sharedCache()
{
    static workload::TraceCache cache;
    return cache;
}

runner::JobSpec
sampledSpec(const std::string &workload, const std::string &scheme,
            uint64_t sampleSeed, uint64_t budget = kBudget)
{
    runner::JobSpec spec;
    spec.mode = runner::JobMode::Pipeline;
    spec.workload = workload;
    spec.scheme = scheme;
    spec.order = kOrder;
    spec.tableEntries = kTable;
    spec.seed = kSeed;
    spec.instructions = kInstructions;
    spec.warmup = kWarmup;
    spec.sampleBudget = budget;
    spec.sampleWindow = kWindow;
    spec.sampleSeed = sampleSeed;
    return spec;
}

json::Value
loadGolden(const char *file)
{
    std::string path = std::string(GDIFF_GOLDEN_DIR "/") + file;
    std::ifstream is(path);
    EXPECT_TRUE(is.good())
        << "missing golden file " << path
        << " — generate it with: test_paper_golden --update-golden";
    std::stringstream ss;
    ss << is.rdbuf();
    json::Value root;
    std::string error;
    EXPECT_TRUE(json::parse(ss.str(), root, &error))
        << path << ": " << error;
    return root;
}

/** Golden full-run IPC per (workload, scheme), from tests/golden/. */
std::map<std::string, std::map<std::string, double>>
goldenIpc()
{
    std::map<std::string, std::map<std::string, double>> out;
    json::Value table2 = loadGolden("table2_ipc.json");
    json::Value fig19 = loadGolden("fig19_speedup.json");
    if (!table2.isObject() || !fig19.isObject())
        return out; // load already failed the test

    // The goldens must describe the budget we sample at, or
    // containment would compare against a different experiment.
    EXPECT_EQ(table2.at("instructions").asNumber(),
              static_cast<double>(kInstructions));
    EXPECT_EQ(table2.at("warmup").asNumber(),
              static_cast<double>(kWarmup));

    for (const auto &[name, v] : table2.at("ipc").object) {
        double base = v.isNumber() ? v.asNumber()
                                   : v.at("value").asNumber();
        out[name]["baseline"] = base;
        const json::Value *ratios = fig19.at("speedup").find(name);
        EXPECT_NE(ratios, nullptr) << "fig19 misses " << name;
        if (!ratios)
            continue;
        for (const auto &[scheme, r] : ratios->object) {
            double ratio = r.isNumber() ? r.asNumber()
                                        : r.at("value").asNumber();
            out[name][scheme] = base * ratio;
        }
    }
    return out;
}

} // namespace

TEST(SampleStats, GoldenIpcInsideSampledInterval)
{
    const auto golden = goldenIpc();
    ASSERT_FALSE(golden.empty());

    for (const auto &[workload, schemes] : golden) {
        for (const auto &[scheme, fullIpc] : schemes) {
            runner::JobResult r = sample::runSampledJob(
                sampledSpec(workload, scheme, /*sampleSeed=*/1),
                &sharedCache(), 4);
            double ipc = r.metric("ipc");
            // 1.5x the reported interval: ~99.9% for the t widths
            // these budgets produce. See the file comment.
            double lo = ipc - 1.5 * (ipc - r.metric("ipc_ci_lo"));
            double hi = ipc + 1.5 * (r.metric("ipc_ci_hi") - ipc);
            EXPECT_LE(lo, fullIpc)
                << workload << "/" << scheme
                << ": golden full-run IPC " << fullIpc
                << " below widened sampled CI [" << lo << ", " << hi
                << "] (point " << ipc << ")";
            EXPECT_GE(hi, fullIpc)
                << workload << "/" << scheme
                << ": golden full-run IPC " << fullIpc
                << " above widened sampled CI [" << lo << ", " << hi
                << "] (point " << ipc << ")";
        }
    }
}

TEST(SampleStats, EmpiricalCoverageNearNominal)
{
    const int kSeeds = 50;
    // 95% nominal; 44/50 (88%) is ~2.5 binomial standard deviations
    // below it — anything under that means the intervals are lying,
    // not that the seeds were unlucky.
    const int kMinCovered = 44;

    for (const std::string workload : {"mcf", "gzip"}) {
        runner::JobSpec full = sampledSpec(workload, "baseline", 1);
        full.sampleBudget = 0;
        double fullIpc =
            runner::runJob(full, &sharedCache()).metric("ipc");

        int covered = 0;
        std::vector<std::string> misses;
        for (int s = 1; s <= kSeeds; ++s) {
            runner::JobResult r = sample::runSampledJob(
                sampledSpec(workload, "baseline", s), &sharedCache(),
                4);
            if (r.metric("ipc_ci_lo") <= fullIpc &&
                fullIpc <= r.metric("ipc_ci_hi")) {
                ++covered;
            } else {
                std::ostringstream os;
                os << "seed " << s << ": [" << r.metric("ipc_ci_lo")
                   << ", " << r.metric("ipc_ci_hi") << "]";
                misses.push_back(os.str());
            }
        }
        EXPECT_GE(covered, kMinCovered)
            << workload << ": only " << covered << "/" << kSeeds
            << " intervals contain the full-run IPC " << fullIpc
            << "; missed: " << ::testing::PrintToString(misses);
    }
}

TEST(SampleStats, SweepBitIdenticalAcrossThreadCounts)
{
    const std::vector<std::string> schemes = {"baseline", "l_stride",
                                              "l_context", "hgvq"};
    for (const auto &scheme : schemes) {
        runner::JobSpec spec = sampledSpec("mcf", scheme, 7);
        runner::JobResult one =
            sample::runSampledJob(spec, &sharedCache(), 1);
        runner::JobResult four =
            sample::runSampledJob(spec, &sharedCache(), 4);
        runner::JobResult again =
            sample::runSampledJob(spec, &sharedCache(), 4);

        ASSERT_EQ(one.metrics.size(), four.metrics.size());
        for (size_t i = 0; i < one.metrics.size(); ++i) {
            EXPECT_EQ(one.metrics[i].first, four.metrics[i].first);
            EXPECT_EQ(one.metrics[i].second, four.metrics[i].second)
                << scheme << "/" << one.metrics[i].first
                << " differs between 1 and 4 threads";
            EXPECT_EQ(four.metrics[i].second, again.metrics[i].second)
                << scheme << "/" << one.metrics[i].first
                << " differs between reruns";
        }
    }
}
