/**
 * @file
 * SIMD kernel equivalence tests (src/util/simd.hh): the AVX2 and
 * scalar variants of every kernel must agree bit-for-bit on arbitrary
 * inputs, including the edge shapes the vector loops special-case —
 * empty lanes, lanes shorter than the vector width, remainders after
 * the vector body, and values at the int64 boundaries.
 */

#include <cstdint>
#include <limits>
#include <vector>

#include <gtest/gtest.h>

#include "util/bits.hh"
#include "util/random.hh"
#include "util/simd.hh"

namespace gdiff {
namespace {

class SimdKernels : public ::testing::Test
{
  protected:
    void
    SetUp() override
    {
        if (!simd::cpuSupportsAvx2())
            GTEST_SKIP() << "no AVX2 on this host";
    }
    void
    TearDown() override
    {
        simd::setModeForTest(simd::cpuSupportsAvx2()
                                 ? simd::Mode::Avx2
                                 : simd::Mode::Scalar);
    }
};

// Sizes around the 4-wide vector body: empty, sub-width, exact
// multiples, and remainders.
const size_t kSizes[] = {0, 1, 2, 3, 4, 5, 7, 8, 15, 16, 31, 64, 1000};

std::vector<uint64_t>
randomLane(size_t n, uint64_t seed)
{
    Xorshift64Star rng(seed);
    std::vector<uint64_t> v(n);
    for (auto &x : v)
        x = rng.next();
    // Sprinkle boundary values into larger lanes.
    if (n > 4) {
        v[0] = 0;
        v[1] = ~0ull;
        v[2] = static_cast<uint64_t>(
            std::numeric_limits<int64_t>::min());
        v[3] = static_cast<uint64_t>(
            std::numeric_limits<int64_t>::max());
    }
    return v;
}

TEST_F(SimdKernels, Mix64LaneMatchesScalarReference)
{
    for (size_t n : kSizes) {
        auto in = randomLane(n, 11 + n);
        std::vector<uint64_t> avx(n, 0xaa), sc(n, 0xbb);
        simd::setModeForTest(simd::Mode::Avx2);
        simd::mix64Lane(in.data(), avx.data(), n);
        simd::setModeForTest(simd::Mode::Scalar);
        simd::mix64Lane(in.data(), sc.data(), n);
        for (size_t i = 0; i < n; ++i) {
            ASSERT_EQ(avx[i], sc[i]) << "n=" << n << " i=" << i;
            ASSERT_EQ(sc[i], mix64(in[i])) << "n=" << n << " i=" << i;
        }
    }
}

TEST_F(SimdKernels, Fold16LaneMatchesScalarReference)
{
    for (size_t n : kSizes) {
        auto raw = randomLane(n, 29 + n);
        std::vector<int64_t> in(raw.begin(), raw.end());
        std::vector<uint16_t> avx(n, 0xaaaa), sc(n, 0xbbbb);
        simd::setModeForTest(simd::Mode::Avx2);
        simd::fold16Lane(in.data(), avx.data(), n);
        simd::setModeForTest(simd::Mode::Scalar);
        simd::fold16Lane(in.data(), sc.data(), n);
        for (size_t i = 0; i < n; ++i) {
            ASSERT_EQ(avx[i], sc[i]) << "n=" << n << " i=" << i;
            ASSERT_EQ(sc[i],
                      static_cast<uint16_t>(
                          mix64(static_cast<uint64_t>(in[i])) &
                          0xffff));
        }
    }
}

TEST_F(SimdKernels, DiffAgainstWindowMatchesScalarAndWraps)
{
    for (size_t n : kSizes) {
        if (n == 0)
            continue;
        auto raw = randomLane(n, 47 + n);
        // Window stored oldest-first; wtop points at the newest.
        std::vector<int64_t> window(raw.begin(), raw.end());
        window[0] = std::numeric_limits<int64_t>::min();
        const int64_t *wtop = window.data() + n - 1;
        const int64_t actual = std::numeric_limits<int64_t>::max();
        std::vector<int64_t> avx(n, 1), sc(n, 2);
        simd::setModeForTest(simd::Mode::Avx2);
        simd::diffAgainstWindow(actual, wtop, avx.data(), n);
        simd::setModeForTest(simd::Mode::Scalar);
        simd::diffAgainstWindow(actual, wtop, sc.data(), n);
        for (size_t k = 0; k < n; ++k) {
            ASSERT_EQ(avx[k], sc[k]) << "n=" << n << " k=" << k;
            int64_t expect = static_cast<int64_t>(
                static_cast<uint64_t>(actual) -
                static_cast<uint64_t>(
                    wtop[-static_cast<ptrdiff_t>(k)]));
            ASSERT_EQ(sc[k], expect) << "n=" << n << " k=" << k;
        }
    }
}

TEST_F(SimdKernels, FirstEqualFindsSmallestIndex)
{
    for (size_t n : kSizes) {
        auto rawA = randomLane(n, 83 + n);
        std::vector<int64_t> a(rawA.begin(), rawA.end());
        std::vector<int64_t> b(n);
        for (size_t i = 0; i < n; ++i)
            b[i] = a[i] + 1; // no match anywhere
        // Plant matches at every position in turn (and keep a later
        // duplicate match to prove the *first* index wins).
        for (size_t hit = 0; hit <= n; ++hit) {
            std::vector<int64_t> bb = b;
            if (hit < n) {
                bb[hit] = a[hit];
                if (hit + 3 < n)
                    bb[hit + 3] = a[hit + 3];
            }
            simd::setModeForTest(simd::Mode::Avx2);
            int iavx = simd::firstEqual(a.data(), bb.data(), n);
            simd::setModeForTest(simd::Mode::Scalar);
            int isc = simd::firstEqual(a.data(), bb.data(), n);
            ASSERT_EQ(iavx, isc) << "n=" << n << " hit=" << hit;
            int expect =
                hit < n ? static_cast<int>(hit) : -1;
            ASSERT_EQ(isc, expect) << "n=" << n << " hit=" << hit;
            if (n > 16)
                break; // exhaustive sweep only for small lanes
        }
    }
}

TEST_F(SimdKernels, CountSecondDiffZeroMatchesScalarReference)
{
    // Lags around the vector width plus the degenerate n <= 2L shapes
    // (scan window shorter than two periods -> zero by contract).
    const size_t kLags[] = {1, 2, 3, 4, 5, 8, 31, 64};
    for (size_t n : kSizes) {
        for (size_t L : kLags) {
            auto v = randomLane(n, 17 * n + L);
            // Plant a genuine stride run so counts are non-trivial.
            for (size_t i = 8; i < n && i < 200; ++i)
                v[i] = v[i - 1] + 3;
            simd::setModeForTest(simd::Mode::Avx2);
            size_t avx = simd::countSecondDiffZero(v.data(), n, L);
            simd::setModeForTest(simd::Mode::Scalar);
            size_t sc = simd::countSecondDiffZero(v.data(), n, L);
            ASSERT_EQ(avx, sc) << "n=" << n << " L=" << L;

            size_t ref = 0;
            for (size_t i = 2 * L; i < n; ++i)
                ref += (v[i] - v[i - L]) == (v[i - L] - v[i - 2 * L]);
            ASSERT_EQ(sc, ref) << "n=" << n << " L=" << L;
        }
    }
}

TEST_F(SimdKernels, RandomizedParityFuzz)
{
    // Beyond the curated kSizes shapes: several hundred trials with
    // randomized lengths, lags, window tops, and planted structure —
    // every kernel's AVX2 and scalar paths must agree bit-for-bit.
    Xorshift64Star rng(0xf00d);
    for (int trial = 0; trial < 400; ++trial) {
        size_t n = 1 + rng.below(600);
        auto raw = randomLane(n, rng.next());
        std::vector<int64_t> a(raw.begin(), raw.end());

        // Sometimes plant a stride run / duplicates so firstEqual and
        // countSecondDiffZero exercise their hit paths, not just
        // misses.
        if (rng.below(2) == 0)
            for (size_t i = 1 + rng.below(n); i < n; ++i)
                a[i] = a[i - 1] + static_cast<int64_t>(rng.below(5));

        std::vector<int64_t> b = a;
        size_t flips = rng.below(n + 1);
        for (size_t f = 0; f < flips; ++f)
            b[rng.below(n)] ^= static_cast<int64_t>(1 + rng.below(7));

        simd::setModeForTest(simd::Mode::Avx2);
        int feAvx = simd::firstEqual(a.data(), b.data(), n);
        simd::setModeForTest(simd::Mode::Scalar);
        int feSc = simd::firstEqual(a.data(), b.data(), n);
        ASSERT_EQ(feAvx, feSc) << "trial=" << trial << " n=" << n;

        const int64_t *wtop = a.data() + n - 1;
        int64_t actual = static_cast<int64_t>(rng.next());
        std::vector<int64_t> dAvx(n), dSc(n);
        simd::setModeForTest(simd::Mode::Avx2);
        simd::diffAgainstWindow(actual, wtop, dAvx.data(), n);
        simd::setModeForTest(simd::Mode::Scalar);
        simd::diffAgainstWindow(actual, wtop, dSc.data(), n);
        ASSERT_EQ(dAvx, dSc) << "trial=" << trial << " n=" << n;

        size_t L = 1 + rng.below(80);
        std::vector<uint64_t> u(a.begin(), a.end());
        simd::setModeForTest(simd::Mode::Avx2);
        size_t cAvx = simd::countSecondDiffZero(u.data(), n, L);
        simd::setModeForTest(simd::Mode::Scalar);
        size_t cSc = simd::countSecondDiffZero(u.data(), n, L);
        ASSERT_EQ(cAvx, cSc)
            << "trial=" << trial << " n=" << n << " L=" << L;
    }
}

TEST(SimdDispatch, NamesAreStable)
{
    simd::Mode m = simd::activeMode();
    const char *name = simd::activeName();
    if (m == simd::Mode::Avx2)
        EXPECT_STREQ(name, "simd.avx2");
    else
        EXPECT_STREQ(name, "simd.scalar");
}

} // namespace
} // namespace gdiff
