/**
 * @file
 * Hybrid (stride + DFCM + chooser) tests: the combination must match
 * the better component on each of its home patterns, and the chooser
 * must switch per PC.
 */

#include <gtest/gtest.h>

#include "predictors/hybrid.hh"

namespace gdiff {
namespace predictors {
namespace {

constexpr uint64_t pcStride = 0x400000;
constexpr uint64_t pcPeriod = 0x400010;

template <typename P>
unsigned
score(P &p, uint64_t pc, const std::vector<int64_t> &values)
{
    unsigned correct = 0;
    for (int64_t v : values) {
        int64_t guess = 0;
        if (p.predict(pc, guess) && guess == v)
            ++correct;
        p.update(pc, v);
    }
    return correct;
}

std::vector<int64_t>
strided(int n)
{
    std::vector<int64_t> v;
    for (int i = 0; i < n; ++i)
        v.push_back(100 + 9 * i);
    return v;
}

std::vector<int64_t>
periodic(int n)
{
    std::vector<int64_t> v;
    const int64_t strides[3] = {1, 5, -2};
    int64_t x = 0;
    for (int i = 0; i < n; ++i) {
        v.push_back(x);
        x += strides[i % 3];
    }
    return v;
}

TEST(Hybrid, MatchesStrideOnStridedStreams)
{
    HybridLocalPredictor h;
    StridePredictor s(0);
    unsigned hs = score(h, pcStride, strided(60));
    unsigned ss = score(s, pcStride, strided(60));
    EXPECT_GE(hs + 2, ss); // within warmup slack
    EXPECT_GT(hs, 50u);
}

TEST(Hybrid, MatchesDfcmOnPeriodicStreams)
{
    HybridLocalPredictor h;
    FcmConfig cfg;
    DfcmPredictor d(cfg);
    unsigned hp = score(h, pcPeriod, periodic(90));
    unsigned dp = score(d, pcPeriod, periodic(90));
    EXPECT_GE(hp + 10, dp); // chooser needs a few switches
    EXPECT_GT(hp, 60u);
}

TEST(Hybrid, ChooserIsPerPc)
{
    // Interleave a strided PC and a periodic PC: both must end up
    // well predicted simultaneously.
    HybridLocalPredictor h;
    auto sv = strided(90);
    auto pv = periodic(90);
    unsigned s_ok = 0, p_ok = 0;
    for (int i = 0; i < 90; ++i) {
        int64_t guess;
        if (h.predict(pcStride, guess) && guess == sv[static_cast<size_t>(i)])
            ++s_ok;
        h.update(pcStride, sv[static_cast<size_t>(i)]);
        if (h.predict(pcPeriod, guess) && guess == pv[static_cast<size_t>(i)])
            ++p_ok;
        h.update(pcPeriod, pv[static_cast<size_t>(i)]);
    }
    EXPECT_GT(s_ok, 80u);
    EXPECT_GT(p_ok, 55u);
}

} // namespace
} // namespace predictors
} // namespace gdiff
