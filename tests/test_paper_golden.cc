/**
 * @file
 * Golden-number regression suite for the paper's headline figures.
 *
 * Table 2 (baseline IPC of the 4-wide, 64-entry-window machine) and
 * Fig. 19 (speedup ratios of l_stride / l_context / gdiff(HGVQ) over
 * that baseline) are pinned, per kernel, against the checked-in JSON
 * under tests/golden. The simulator is integer-deterministic, so at a
 * fixed budget every metric is bit-reproducible; any drift means a
 * model change, intentional or not.
 *
 * When a change is intentional, regenerate the golden files with:
 *
 *   ./build/tests/test_paper_golden --update-golden
 *
 * which rewrites the files under tests/golden in the source tree;
 * review the diff like any other code change.
 *
 * Golden file format: every pinned entry is either a bare number
 * (compared within the file's "default_tolerance") or an object
 * {"value": v, "tol": t} for values that need a looser per-value
 * tolerance (e.g. if a platform ever exhibits FP wobble on one cell).
 *
 * The measurement budget is deliberately small (60k measured
 * instructions) so the full 40-cell pipeline sweep stays a few
 * seconds; the suite pins *this* budget's numbers, not the paper-scale
 * bench runs. Budgets are recorded in the golden files and verified,
 * so a budget change here fails loudly instead of comparing apples to
 * oranges.
 */

#include <gtest/gtest.h>

#include <cmath>
#include <cstdio>
#include <fstream>
#include <map>
#include <sstream>
#include <string>
#include <vector>

#include "runner/runner.hh"
#include "util/json.hh"
#include "workload/workload.hh"

using namespace gdiff;

namespace {

bool updateGolden = false;

constexpr uint64_t kInstructions = 60'000;
constexpr uint64_t kWarmup = 10'000;
constexpr unsigned kOrder = 32; // paper order for pipeline studies
constexpr uint64_t kTable = 8192;
constexpr uint64_t kSeed = 1;

const std::vector<std::string> kVpSchemes = {"l_stride", "l_context",
                                             "hgvq"};

/** Everything both golden files pin, measured in one shared sweep. */
struct Measured
{
    /// Table 2: workload -> baseline IPC
    std::map<std::string, double> baseIpc;
    /// Fig. 19: workload -> scheme -> IPC ratio over baseline
    std::map<std::string, std::map<std::string, double>> speedup;
    /// Fig. 19 H_mean row: scheme -> harmonic-mean speedup ratio
    std::map<std::string, double> hmean;
};

const Measured &
measured()
{
    static const Measured m = [] {
        runner::SweepSpec spec;
        spec.mode = runner::JobMode::Pipeline;
        spec.schemes = {"baseline", "l_stride", "l_context", "hgvq"};
        spec.orders = {kOrder};
        spec.tables = {kTable};
        spec.seeds = {kSeed};
        spec.defaultInstructions = kInstructions;
        spec.warmup = kWarmup;

        runner::SweepRunner sweep(spec);
        runner::CollectingSink results;
        sweep.addSink(results);
        runner::SweepOptions ropt;
        ropt.threads = 4; // metrics are thread-count invariant
        sweep.run(ropt);

        std::map<std::string, std::map<std::string, double>> ipc;
        for (const auto &r : results.records())
            ipc[r.spec.workload][r.spec.scheme] =
                r.result.metric("ipc");

        Measured out;
        std::map<std::string, double> invSum;
        size_t n = 0;
        for (const auto &name : workload::specWorkloadNames()) {
            double ipc0 = ipc.at(name).at("baseline");
            out.baseIpc[name] = ipc0;
            for (const auto &scheme : kVpSchemes) {
                double r = ipc.at(name).at(scheme) / ipc0;
                out.speedup[name][scheme] = r;
                invSum[scheme] += 1.0 / r;
            }
            ++n;
        }
        for (const auto &scheme : kVpSchemes)
            out.hmean[scheme] =
                static_cast<double>(n) / invSum.at(scheme);
        return out;
    }();
    return m;
}

std::string
goldenPath(const char *file)
{
    return std::string(GDIFF_GOLDEN_DIR "/") + file;
}

/** Shortest round-trippable decimal form of a double. */
std::string
fmt(double v)
{
    char buf[64];
    std::snprintf(buf, sizeof(buf), "%.17g", v);
    return buf;
}

void
writeGoldenFile(const char *file, const std::string &body)
{
    std::string path = goldenPath(file);
    std::ofstream os(path);
    ASSERT_TRUE(os.good()) << "cannot write golden file " << path;
    os << body;
    os.close();
    ASSERT_TRUE(os.good()) << "short write to golden file " << path;
    std::printf("updated %s\n", path.c_str());
}

json::Value
loadGoldenFile(const char *file)
{
    std::string path = goldenPath(file);
    std::ifstream is(path);
    EXPECT_TRUE(is.good())
        << "missing golden file " << path
        << " — generate it with: test_paper_golden --update-golden";
    std::stringstream ss;
    ss << is.rdbuf();
    json::Value root;
    std::string error;
    EXPECT_TRUE(json::parse(ss.str(), root, &error))
        << path << ": " << error;
    return root;
}

/** A pinned value: bare number or {"value": v, "tol": t}. */
void
entryOf(const json::Value &v, double defaultTol, double &value,
        double &tol)
{
    if (v.isNumber()) {
        value = v.asNumber();
        tol = defaultTol;
        return;
    }
    value = v.at("value").asNumber();
    const json::Value *t = v.find("tol");
    tol = t ? t->asNumber() : defaultTol;
}

/**
 * Compare one measured value against its pinned entry, failing with a
 * self-contained diff (what drifted, by how much, how to regenerate).
 */
void
expectGolden(const char *file, const std::string &key, double golden,
             double tol, double got)
{
    if (std::abs(got - golden) <= tol)
        return;
    ADD_FAILURE() << file << ": " << key
                  << " drifted from the pinned value\n"
                  << "  golden:   " << fmt(golden) << " (tol " << tol
                  << ")\n"
                  << "  measured: " << fmt(got) << "\n"
                  << "  |diff|:   " << fmt(std::abs(got - golden))
                  << "\n"
                  << "If this change is intentional, regenerate with:\n"
                  << "  test_paper_golden --update-golden\n"
                  << "and review the tests/golden/ diff.";
}

/** The run budget pinned in @p root must match the compiled budget. */
void
checkBudget(const char *file, const json::Value &root)
{
    EXPECT_EQ(root.at("instructions").asNumber(),
              static_cast<double>(kInstructions))
        << file << " was generated at a different instruction budget;"
        << " regenerate with --update-golden";
    EXPECT_EQ(root.at("warmup").asNumber(),
              static_cast<double>(kWarmup))
        << file << " was generated at a different warmup budget;"
        << " regenerate with --update-golden";
}

std::string
budgetJson()
{
    std::ostringstream os;
    os << "  \"instructions\": " << kInstructions << ",\n"
       << "  \"warmup\": " << kWarmup << ",\n"
       << "  \"default_tolerance\": 1e-09,\n";
    return os.str();
}

} // namespace

TEST(PaperGolden, Table2BaselineIpc)
{
    const char *file = "table2_ipc.json";
    const Measured &m = measured();

    if (updateGolden) {
        std::ostringstream os;
        os << "{\n" << budgetJson() << "  \"ipc\": {\n";
        bool first = true;
        for (const auto &[name, ipc] : m.baseIpc) {
            os << (first ? "" : ",\n") << "    \"" << name
               << "\": " << fmt(ipc);
            first = false;
        }
        os << "\n  }\n}\n";
        writeGoldenFile(file, os.str());
        return;
    }

    json::Value root = loadGoldenFile(file);
    if (!root.isObject())
        return; // load already failed the test
    checkBudget(file, root);
    double defTol = root.at("default_tolerance").asNumber();

    const json::Value &ipc = root.at("ipc");
    // Every pinned kernel must still exist and match...
    for (const auto &[name, golden] : ipc.object) {
        auto it = m.baseIpc.find(name);
        if (it == m.baseIpc.end()) {
            ADD_FAILURE() << file << " pins unknown workload '" << name
                          << "' — regenerate with --update-golden";
            continue;
        }
        double value, tol;
        entryOf(golden, defTol, value, tol);
        expectGolden(file, "ipc[" + name + "]", value, tol,
                     it->second);
    }
    // ...and every current kernel must be pinned.
    for (const auto &[name, value] : m.baseIpc) {
        (void)value;
        EXPECT_NE(ipc.find(name), nullptr)
            << file << " does not pin workload '" << name
            << "' — regenerate with --update-golden";
    }
}

TEST(PaperGolden, Fig19SpeedupRatios)
{
    const char *file = "fig19_speedup.json";
    const Measured &m = measured();

    if (updateGolden) {
        std::ostringstream os;
        os << "{\n" << budgetJson() << "  \"speedup\": {\n";
        bool firstW = true;
        for (const auto &[name, schemes] : m.speedup) {
            os << (firstW ? "" : ",\n") << "    \"" << name
               << "\": {";
            bool firstS = true;
            for (const auto &scheme : kVpSchemes) {
                os << (firstS ? "" : ", ") << "\"" << scheme
                   << "\": " << fmt(schemes.at(scheme));
                firstS = false;
            }
            os << "}";
            firstW = false;
        }
        os << "\n  },\n  \"hmean\": {";
        bool firstS = true;
        for (const auto &scheme : kVpSchemes) {
            os << (firstS ? "" : ", ") << "\"" << scheme
               << "\": " << fmt(m.hmean.at(scheme));
            firstS = false;
        }
        os << "}\n}\n";
        writeGoldenFile(file, os.str());
        return;
    }

    json::Value root = loadGoldenFile(file);
    if (!root.isObject())
        return;
    checkBudget(file, root);
    double defTol = root.at("default_tolerance").asNumber();

    const json::Value &speedup = root.at("speedup");
    for (const auto &[name, schemes] : speedup.object) {
        auto it = m.speedup.find(name);
        if (it == m.speedup.end()) {
            ADD_FAILURE() << file << " pins unknown workload '" << name
                          << "' — regenerate with --update-golden";
            continue;
        }
        for (const auto &[scheme, golden] : schemes.object) {
            auto sit = it->second.find(scheme);
            if (sit == it->second.end()) {
                ADD_FAILURE()
                    << file << " pins unknown scheme '" << scheme
                    << "' — regenerate with --update-golden";
                continue;
            }
            double value, tol;
            entryOf(golden, defTol, value, tol);
            expectGolden(file,
                         "speedup[" + name + "][" + scheme + "]",
                         value, tol, sit->second);
        }
    }
    for (const auto &[name, schemes] : m.speedup) {
        (void)schemes;
        EXPECT_NE(speedup.find(name), nullptr)
            << file << " does not pin workload '" << name
            << "' — regenerate with --update-golden";
    }

    const json::Value &hmean = root.at("hmean");
    for (const auto &scheme : kVpSchemes) {
        const json::Value *golden = hmean.find(scheme);
        if (!golden) {
            ADD_FAILURE() << file << " does not pin hmean[" << scheme
                          << "] — regenerate with --update-golden";
            continue;
        }
        double value, tol;
        entryOf(*golden, defTol, value, tol);
        expectGolden(file, "hmean[" + scheme + "]", value, tol,
                     m.hmean.at(scheme));
    }
}

/**
 * The paper's qualitative claims hold at any budget and never need
 * regeneration: gdiff(HGVQ) must beat the baseline on harmonic mean,
 * and mcf (the memory-bound kernel) must see the largest gdiff gain.
 */
TEST(PaperGolden, QualitativeShape)
{
    if (updateGolden)
        GTEST_SKIP() << "update mode only rewrites golden files";
    const Measured &m = measured();
    EXPECT_GT(m.hmean.at("hgvq"), 1.0);
    double mcfGain = m.speedup.at("mcf").at("hgvq");
    for (const auto &[name, schemes] : m.speedup)
        EXPECT_LE(schemes.at("hgvq"), mcfGain + 1e-12)
            << name << " out-gains mcf under gdiff(HGVQ)";
}

int
main(int argc, char **argv)
{
    for (int i = 1; i < argc; ++i)
        if (std::string(argv[i]) == "--update-golden")
            updateGolden = true;
    ::testing::InitGoogleTest(&argc, argv);
    return RUN_ALL_TESTS();
}
