/**
 * @file
 * predictAhead() coverage across every predictor family.
 *
 * The dispatch-time protocol: the table reflects the last written-
 * back instance while `ahead` instances are still in flight. Stride
 * extrapolates across them (last + stride * (ahead + 1), with two's-
 * complement wrap); every other family falls back to predict(), and
 * must do so for any `ahead` — the OOO model leans on that fallback
 * being harmless.
 */

#include <cstdint>
#include <limits>
#include <vector>

#include <gtest/gtest.h>

#include "check/fuzzer.hh"
#include "check/reference.hh"
#include "predictors/stride.hh"
#include "predictors/value_predictor.hh"

namespace gdiff {
namespace {

TEST(PredictAhead, StrideExtrapolatesAcrossInFlightInstances)
{
    predictors::StridePredictor p(0);
    const uint64_t pc = 0x4000;
    for (int i = 0; i < 4; ++i)
        p.update(pc, 100 + 7 * i); // learn stride 7, last = 121
    for (unsigned ahead = 0; ahead < 6; ++ahead) {
        int64_t v = 0;
        ASSERT_TRUE(p.predictAhead(pc, ahead, v));
        EXPECT_EQ(v, 121 + 7 * static_cast<int64_t>(ahead + 1))
            << "ahead=" << ahead;
    }
    // ahead = 0 must agree with plain predict().
    int64_t a = 0, b = 0;
    ASSERT_TRUE(p.predict(pc, a));
    ASSERT_TRUE(p.predictAhead(pc, 0, b));
    EXPECT_EQ(a, b);
}

TEST(PredictAhead, StrideWrapsTwosComplement)
{
    predictors::StridePredictor p(0);
    const uint64_t pc = 0x4100;
    const int64_t top = std::numeric_limits<int64_t>::max() - 2;
    p.update(pc, top - 10);
    p.update(pc, top - 5);
    p.update(pc, top); // stride 5 established (2-delta)
    int64_t v = 0;
    ASSERT_TRUE(p.predictAhead(pc, 1, v));
    // top + 10 wraps: computed in uint64 arithmetic.
    EXPECT_EQ(v, static_cast<int64_t>(static_cast<uint64_t>(top) +
                                      10ull));
}

TEST(PredictAhead, UntrainedPcDoesNotPredict)
{
    for (const auto &family : check::batchFamilyNames()) {
        auto p = check::makeProduction(family);
        int64_t v = 0;
        EXPECT_FALSE(p->predictAhead(0xdead00, 3, v)) << family;
    }
}

// Every non-extrapolating family must fall back to predict() for any
// lookahead, after arbitrary training.
TEST(PredictAhead, FallbackFamiliesMatchPredict)
{
    check::FuzzStreamConfig cfg;
    cfg.seed = 31;
    cfg.records = 3000;
    const auto stream = check::fuzzValueStream(cfg);
    for (const auto &family : check::batchFamilyNames()) {
        if (family == "stride")
            continue; // extrapolates; covered above
        auto p = check::makeProduction(family);
        for (const auto &r : stream)
            p->update(r.pc, r.value);
        for (const auto &r : stream) {
            int64_t base = 0;
            bool predicted = p->predict(r.pc, base);
            for (unsigned ahead : {0u, 1u, 5u}) {
                int64_t v = 0;
                ASSERT_EQ(p->predictAhead(r.pc, ahead, v), predicted)
                    << family << " ahead=" << ahead;
                if (predicted)
                    ASSERT_EQ(v, base)
                        << family << " ahead=" << ahead;
            }
            if (&r - stream.data() > 200)
                break; // a slice is plenty per family
        }
    }
}

} // namespace
} // namespace gdiff
