/**
 * @file
 * Disagreement mining (src/check/mine.hh): target parsing, the
 * conflict counter, fingerprinting, and the full search → shrink →
 * cluster pipeline — including the two acceptance properties the CI
 * smoke leans on: the documented default pairs each yield at least
 * one small clustered witness on a fixed seed, and the whole report
 * (every digest included) is bit-identical across runs and thread
 * counts.
 */

#include <algorithm>
#include <cstdint>
#include <map>
#include <sstream>

#include <gtest/gtest.h>

#include "check/fuzzer.hh"
#include "check/mine.hh"

namespace gdiff {
namespace {

check::MineTarget
target(const std::string &spec)
{
    check::MineTarget t;
    std::string error;
    EXPECT_TRUE(check::parseMineTarget(spec, t, error)) << error;
    return t;
}

TEST(MineTarget, ParsesFamiliesOrdersAndOracles)
{
    check::MineTarget t = target("gdiff-vs-gfcm");
    EXPECT_EQ(t.left.family, "gdiff");
    EXPECT_FALSE(t.left.oracle);
    EXPECT_EQ(t.left.order, 0u);
    EXPECT_EQ(t.right.family, "gfcm");
    EXPECT_EQ(t.name(), "gdiff-vs-gfcm");

    t = target("gdiff@1-vs-gdiff@4");
    EXPECT_EQ(t.left.order, 1u);
    EXPECT_EQ(t.right.order, 4u);
    EXPECT_EQ(t.name(), "gdiff@1-vs-gdiff@4");

    t = target("gdiff@8-vs-ref:gdiff@8");
    EXPECT_FALSE(t.left.oracle);
    EXPECT_TRUE(t.right.oracle);
    EXPECT_EQ(t.right.family, "gdiff");
    EXPECT_EQ(t.right.order, 8u);
    EXPECT_EQ(t.name(), "gdiff@8-vs-ref:gdiff@8");
}

TEST(MineTarget, RejectsMalformedSpecs)
{
    check::MineTarget t;
    std::string error;
    EXPECT_FALSE(check::parseMineTarget("gdiff", t, error));
    EXPECT_FALSE(check::parseMineTarget("gdiff-vs-", t, error));
    EXPECT_FALSE(check::parseMineTarget("-vs-gfcm", t, error));
    EXPECT_FALSE(check::parseMineTarget("gdiff-vs-warlock", t, error));
    EXPECT_NE(error.find("warlock"), std::string::npos);
    EXPECT_FALSE(
        check::parseMineTarget("gdiff@x-vs-gfcm", t, error));
    EXPECT_FALSE(
        check::parseMineTarget("ref:hybrid-vs-gdiff", t, error));
}

TEST(MineTarget, EverySideBuildsAFreshPredictor)
{
    for (const std::string &spec : check::defaultMineTargets()) {
        check::MineTarget t = target(spec);
        EXPECT_NE(t.left.build(), nullptr);
        EXPECT_NE(t.right.build(), nullptr);
    }
}

TEST(FuzzBehaviorWeights, EqualWeightsReproduceTheHistoricalStream)
{
    check::FuzzStreamConfig base;
    base.seed = 7;
    base.records = 2000;
    auto historical = check::fuzzValueStream(base);

    // Any uniform weighting (not just all-1) must keep the stream.
    check::FuzzStreamConfig scaled = base;
    scaled.behaviorWeights = {3, 3, 3, 3, 3, 3};
    EXPECT_EQ(check::streamDigest(check::fuzzValueStream(scaled)),
              check::streamDigest(historical));

    // A skewed mix must actually change the stream.
    check::FuzzStreamConfig skewed = base;
    skewed.behaviorWeights = {0, 9, 0, 1, 0, 0};
    EXPECT_NE(check::streamDigest(check::fuzzValueStream(skewed)),
              check::streamDigest(historical));
}

TEST(FuzzBehaviorWeights, SingleClassMixIsPure)
{
    // Only the noise class enabled: a gdiff-vs-gdiff self-pair never
    // conflicts, while distinct orders on pure follower/stride mixes
    // can. Here we just pin that generation honors the weights: with
    // only Constant enabled every site repeats one value forever, so
    // a last_value-vs-stride pair can never see a value conflict once
    // warmed (both always predict the repeated value).
    check::FuzzStreamConfig cfg;
    cfg.seed = 3;
    cfg.records = 1000;
    cfg.behaviorWeights = {1, 0, 0, 0, 0, 0};
    auto stream = check::fuzzValueStream(cfg);
    EXPECT_EQ(
        check::countConflicts(target("last_value-vs-stride"), stream),
        0u);
}

TEST(MineConflicts, SelfPairNeverConflicts)
{
    check::FuzzStreamConfig cfg;
    cfg.seed = 11;
    cfg.records = 3000;
    auto stream = check::fuzzValueStream(cfg);
    EXPECT_EQ(check::countConflicts(target("gdiff-vs-gdiff"), stream),
              0u);
}

TEST(MineConflicts, FirstDivergenceIsReported)
{
    check::FuzzStreamConfig cfg;
    cfg.seed = 5;
    cfg.records = 4096;
    auto stream = check::fuzzValueStream(cfg);
    check::MineTarget t = target("gdiff-vs-gfcm");
    check::Divergence first;
    uint64_t conflicts = check::countConflicts(t, stream, &first);
    ASSERT_GT(conflicts, 0u);
    EXPECT_LT(first.index, stream.size());
    EXPECT_EQ(first.pc, stream[first.index].pc);
    EXPECT_TRUE(first.prodPredicted);
    EXPECT_TRUE(first.refPredicted);
    EXPECT_NE(first.prodValue, first.refValue);
}

TEST(MineFingerprint, DetectsStructure)
{
    check::MineTarget t = target("gdiff-vs-gfcm");
    // Two interleaved striding sites: value period 2, pc period 2.
    std::vector<check::FuzzRecord> stream;
    for (int i = 0; i < 64; ++i) {
        stream.push_back({0x1000, 100 + 8 * i});
        stream.push_back({0x2000, -50 - 8 * i});
    }
    check::WitnessFingerprint fp = check::fingerprintWitness(t, stream);
    EXPECT_EQ(fp.phases, 2u);
    EXPECT_EQ(fp.valuePeriod, 2u);
    // Deltas alternate +/-: sign pattern packs the negatives.
    EXPECT_NE(fp.signPattern, 0u);
    EXPECT_FALSE(fp.key().empty());
    EXPECT_NE(fp.digest(), check::WitnessFingerprint{}.digest());
}

TEST(MineFingerprint, KeyAndDigestAgreeOnEquality)
{
    check::MineTarget t = target("gdiff-vs-gfcm");
    std::vector<check::FuzzRecord> a, b;
    for (int i = 0; i < 16; ++i) {
        a.push_back({0x4000, 3 * i});
        b.push_back({0x4000, 3 * i}); // identical structure
    }
    auto fa = check::fingerprintWitness(t, a);
    auto fb = check::fingerprintWitness(t, b);
    EXPECT_EQ(fa.key(), fb.key());
    EXPECT_EQ(fa.digest(), fb.digest());
}

check::MineConfig
smallConfig(const std::string &spec, unsigned threads = 1)
{
    check::MineConfig cfg;
    std::string error;
    EXPECT_TRUE(check::parseMineTarget(spec, cfg.target, error))
        << error;
    cfg.seed = 1;
    cfg.records = 1024;
    cfg.rounds = 6;
    cfg.restarts = 4;
    cfg.threads = threads;
    return cfg;
}

TEST(MineReport, DefaultPairsYieldShrunkenClusteredWitnesses)
{
    // Witness-size floors are themselves a mined finding: a
    // gdiff@1-vs-gdiff@4 disagreement shrinks below 10 records, but
    // gdiff(8)-vs-gfcm(4) conflicts need both global warm-ups live
    // at once — the miner never finds one below 12 records, however
    // hard the minimizer squeezes (ddmin + pairwise removal + site
    // unification). The floor is pinned here so a regression in
    // either predictor's warm-up shows up as a shift.
    const std::map<std::string, size_t> sizeFloor = {
        {"gdiff-vs-gfcm", 14}, {"gdiff@1-vs-gdiff@4", 10}};
    bool anyTiny = false;
    for (const std::string &spec : check::defaultMineTargets()) {
        check::MineReport report =
            check::mineDisagreements(smallConfig(spec));
        ASSERT_FALSE(report.witnesses.empty()) << spec;
        ASSERT_FALSE(report.clusters.empty()) << spec;
        size_t smallest = SIZE_MAX;
        for (const auto &w : report.witnesses) {
            // Every witness is minimized to a few dozen records at
            // most.
            EXPECT_LE(w.stream.size(), 32u) << spec;
            EXPECT_GE(w.conflicts, 1u) << spec;
            EXPECT_EQ(w.digest, check::streamDigest(w.stream));
            smallest = std::min(smallest, w.stream.size());
        }
        ASSERT_NE(sizeFloor.find(spec), sizeFloor.end()) << spec;
        EXPECT_LE(smallest, sizeFloor.at(spec)) << spec;
        anyTiny = anyTiny || smallest <= 10;
        // Every witness is in exactly one cluster.
        size_t members = 0;
        for (const auto &c : report.clusters)
            members += c.members.size();
        EXPECT_EQ(members, report.witnesses.size()) << spec;
    }
    // The acceptance bound: the miner demonstrably shrinks a
    // documented-pair disagreement to <= 10 records.
    EXPECT_TRUE(anyTiny);
}

TEST(MineReport, BitIdenticalAcrossRunsAndThreadCounts)
{
    const std::string spec = "gdiff-vs-gfcm";
    check::MineReport a =
        check::mineDisagreements(smallConfig(spec, 1));
    check::MineReport b =
        check::mineDisagreements(smallConfig(spec, 1));
    check::MineReport c =
        check::mineDisagreements(smallConfig(spec, 4));
    EXPECT_EQ(a.digest, b.digest);
    EXPECT_EQ(a.digest, c.digest);
    ASSERT_EQ(a.witnesses.size(), c.witnesses.size());
    for (size_t i = 0; i < a.witnesses.size(); ++i) {
        EXPECT_EQ(a.witnesses[i].digest, c.witnesses[i].digest);
        EXPECT_EQ(a.witnesses[i].fingerprint.key(),
                  c.witnesses[i].fingerprint.key());
    }
    EXPECT_EQ(check::mineReportJsonl(a), check::mineReportJsonl(c));
}

TEST(MineReport, SeedChangesTheSearch)
{
    check::MineConfig a = smallConfig("gdiff-vs-gfcm");
    check::MineConfig b = a;
    b.seed = 2;
    // Different seeds explore different streams; the reports need not
    // differ in *clusters*, but the mined witnesses almost surely do.
    check::MineReport ra = check::mineDisagreements(a);
    check::MineReport rb = check::mineDisagreements(b);
    ASSERT_FALSE(ra.witnesses.empty());
    ASSERT_FALSE(rb.witnesses.empty());
    bool anyDiff = ra.witnesses.size() != rb.witnesses.size();
    for (size_t i = 0;
         !anyDiff && i < ra.witnesses.size(); ++i)
        anyDiff = ra.witnesses[i].digest != rb.witnesses[i].digest;
    EXPECT_TRUE(anyDiff);
}

TEST(MineReport, RendersTableJsonlAndArtifactNames)
{
    check::MineReport report =
        check::mineDisagreements(smallConfig("gdiff-vs-gfcm"));
    std::ostringstream os;
    check::printMineReport(report, os);
    EXPECT_NE(os.str().find("blind spots: gdiff-vs-gfcm"),
              std::string::npos);
    EXPECT_NE(os.str().find("report digest:"), std::string::npos);

    std::string jsonl = check::mineReportJsonl(report);
    EXPECT_NE(jsonl.find("\"target\":\"gdiff-vs-gfcm\""),
              std::string::npos);
    EXPECT_NE(jsonl.find("\"fingerprint\""), std::string::npos);

    EXPECT_EQ(check::mineArtifactName("gdiff@1-vs-ref:gdiff@1", 2),
              "gdiffmine_gdiff_1-vs-ref_gdiff_1_cluster2.gdtr");
}

} // namespace
} // namespace gdiff
