/**
 * @file
 * Metric-surface snapshots (src/check/snapshot.hh): write/read round
 * trips (including sampled specs, whose sample_* knobs ride in the
 * deterministic payload), typed rejection of corrupt input, the
 * SnapshotSink on a real sweep, and the diff semantics the CI gate
 * depends on — self-diff empty, a 1e-6 IPC perturbation detected,
 * added/removed configs reported, and deltas suppressed when both
 * sides' confidence intervals overlap.
 */

#include <cstdio>
#include <fstream>
#include <sstream>

#include <gtest/gtest.h>

#include "check/snapshot.hh"
#include "runner/runner.hh"
#include "sample/sample.hh"

namespace gdiff {
namespace {

std::string
testPath(const std::string &name)
{
    return ::testing::TempDir() + name;
}

runner::JobRecord
makeRecord(size_t index, const std::string &workload, double ipc)
{
    runner::JobRecord rec;
    rec.index = index;
    rec.spec.workload = workload;
    rec.spec.mode = runner::JobMode::Pipeline;
    rec.spec.scheme = "hgvq";
    rec.spec.order = 8;
    rec.result.metrics = {
        {"ipc", ipc},
        {"coverage", 0.25 + 0.001 * static_cast<double>(index)},
    };
    return rec;
}

check::Snapshot
makeSnapshot(double ipc0 = 1.25)
{
    check::Snapshot snap;
    snap.tool = "test";
    snap.note = "unit";
    snap.jobs.push_back(makeRecord(0, "mcf", ipc0));
    snap.jobs.push_back(makeRecord(1, "parser", 0.7318244928377201));
    return snap;
}

TEST(Snapshot, WriteReadRoundTripPreservesEverything)
{
    std::string path = testPath("round_trip.snap");
    check::Snapshot snap = makeSnapshot();
    uint64_t digest = 0;
    {
        check::Snapshot w = snap;
        ASSERT_TRUE(check::writeSnapshot(w, path).ok());
        digest = w.digest();
    }
    check::Snapshot back;
    check::SnapshotResult r = check::readSnapshot(path, back);
    ASSERT_TRUE(r.ok()) << r.message;
    EXPECT_EQ(back.tool, "test");
    EXPECT_EQ(back.note, "unit");
    ASSERT_EQ(back.jobs.size(), snap.jobs.size());
    EXPECT_EQ(back.digest(), digest);
    // Field-for-field: the re-rendered deterministic payloads match.
    back.canonicalize();
    check::Snapshot orig = snap;
    orig.canonicalize();
    for (size_t i = 0; i < back.jobs.size(); ++i)
        EXPECT_EQ(
            runner::JsonlSink::deterministicJson(back.jobs[i]),
            runner::JsonlSink::deterministicJson(orig.jobs[i]));
}

TEST(Snapshot, SampledSpecsRoundTripBitIdentically)
{
    std::string path = testPath("sampled.snap");
    check::Snapshot snap;
    runner::JobRecord rec = makeRecord(0, "mcf", 1.25);
    rec.spec.sampleBudget = 30'000;
    rec.spec.sampleWindow = 4096;
    rec.spec.sampleSeed = 7;
    rec.result.metrics.push_back({"ipc_ci_lo", 1.2409999999999999});
    rec.result.metrics.push_back({"ipc_ci_hi", 1.2590000000000001});
    snap.jobs.push_back(rec);
    std::string line = runner::JsonlSink::deterministicJson(rec);
    EXPECT_NE(line.find("\"sample_budget\":30000"), std::string::npos);

    ASSERT_TRUE(check::writeSnapshot(snap, path).ok());
    check::Snapshot back;
    check::SnapshotResult r = check::readSnapshot(path, back);
    ASSERT_TRUE(r.ok()) << r.message;
    ASSERT_EQ(back.jobs.size(), 1u);
    EXPECT_TRUE(back.jobs[0].spec.sampled());
    EXPECT_EQ(back.jobs[0].spec.key(), rec.spec.key());
    EXPECT_EQ(runner::JsonlSink::deterministicJson(back.jobs[0]),
              line);
}

TEST(Snapshot, FullTracePayloadHasNoSampleFields)
{
    // The pre-sampling payload shape is pinned: adding sample fields
    // to full-trace records would break every archived jsonl diff.
    runner::JobRecord rec = makeRecord(0, "mcf", 1.0);
    EXPECT_EQ(runner::JsonlSink::deterministicJson(rec).find(
                  "sample_"),
              std::string::npos);
}

TEST(Snapshot, TamperedFileIsRejectedWithTypedStatus)
{
    std::string path = testPath("tampered.snap");
    check::Snapshot snap = makeSnapshot();
    ASSERT_TRUE(check::writeSnapshot(snap, path).ok());

    std::ifstream in(path);
    std::string text((std::istreambuf_iterator<char>(in)),
                     std::istreambuf_iterator<char>());
    in.close();
    // Flip one digit inside a metric value.
    size_t pos = text.find("0.7318244928377201");
    ASSERT_NE(pos, std::string::npos);
    text[pos + 3] = '4';
    std::ofstream(path) << text;

    check::Snapshot back;
    check::SnapshotResult r = check::readSnapshot(path, back);
    EXPECT_EQ(r.status, check::SnapshotStatus::DigestMismatch);
    EXPECT_STREQ(check::snapshotStatusName(r.status),
                 "digest_mismatch");
}

TEST(Snapshot, GarbageAndWrongDocumentsAreTyped)
{
    std::string path = testPath("garbage.snap");
    std::ofstream(path) << "this is not json";
    check::Snapshot out;
    EXPECT_EQ(check::readSnapshot(path, out).status,
              check::SnapshotStatus::Parse);

    std::ofstream(path) << "{\"format\":\"other\"}";
    EXPECT_EQ(check::readSnapshot(path, out).status,
              check::SnapshotStatus::BadFormat);

    std::ofstream(path) << "{\"format\":\"gdiff-snapshot\","
                           "\"version\":99,\"digest\":\"0\","
                           "\"jobs\":[]}";
    EXPECT_EQ(check::readSnapshot(path, out).status,
              check::SnapshotStatus::BadVersion);

    EXPECT_EQ(check::readSnapshot(testPath("missing.snap"), out)
                  .status,
              check::SnapshotStatus::IoError);
}

TEST(Snapshot, SelfDiffIsEmpty)
{
    check::Snapshot snap = makeSnapshot();
    check::SnapshotDiff diff = check::diffSnapshots(snap, snap);
    EXPECT_TRUE(diff.empty());
    std::ostringstream os;
    check::printSnapshotDiff(diff, os);
    EXPECT_NE(os.str().find("snapshots match"), std::string::npos);
}

TEST(Snapshot, DetectsTinyIpcPerturbation)
{
    check::Snapshot oldSnap = makeSnapshot(1.25);
    check::Snapshot newSnap = makeSnapshot(1.25 + 1e-6);
    check::SnapshotDiff diff =
        check::diffSnapshots(oldSnap, newSnap);
    ASSERT_EQ(diff.deltas.size(), 1u);
    EXPECT_EQ(diff.deltas[0].metric, "ipc");
    EXPECT_NEAR(diff.deltas[0].newValue - diff.deltas[0].oldValue,
                1e-6, 1e-12);

    // ...and a tolerance just above the delta silences it.
    check::SnapshotDiffOptions opts;
    opts.metricTolerance["ipc"] = 1e-5;
    EXPECT_TRUE(
        check::diffSnapshots(oldSnap, newSnap, opts).empty());
}

TEST(Snapshot, ReportsAddedAndRemovedConfigs)
{
    check::Snapshot oldSnap = makeSnapshot();
    check::Snapshot newSnap = makeSnapshot();
    newSnap.jobs.push_back(makeRecord(2, "gzip", 0.9));
    check::SnapshotDiff diff =
        check::diffSnapshots(oldSnap, newSnap);
    ASSERT_EQ(diff.added.size(), 1u);
    EXPECT_NE(diff.added[0].find("workload=gzip"),
              std::string::npos);
    EXPECT_TRUE(diff.removed.empty());

    diff = check::diffSnapshots(newSnap, oldSnap);
    EXPECT_EQ(diff.removed.size(), 1u);
    EXPECT_TRUE(diff.added.empty());
}

TEST(Snapshot, MissingMetricOnOneSideIsReported)
{
    check::Snapshot oldSnap = makeSnapshot();
    check::Snapshot newSnap = makeSnapshot();
    newSnap.jobs[0].result.metrics.push_back({"mpki", 3.5});
    check::SnapshotDiff diff =
        check::diffSnapshots(oldSnap, newSnap);
    ASSERT_EQ(diff.deltas.size(), 1u);
    EXPECT_EQ(diff.deltas[0].metric, "mpki");
    EXPECT_FALSE(diff.deltas[0].oldPresent);
    EXPECT_TRUE(diff.deltas[0].newPresent);
}

runner::JobRecord
sampledRecord(double ipc, double lo, double hi)
{
    runner::JobRecord rec = makeRecord(0, "mcf", ipc);
    rec.spec.sampleBudget = 30'000;
    rec.result.metrics.push_back({"ipc_ci_lo", lo});
    rec.result.metrics.push_back({"ipc_ci_hi", hi});
    return rec;
}

TEST(Snapshot, OverlappingIntervalsSuppressTheDelta)
{
    check::Snapshot oldSnap, newSnap;
    oldSnap.jobs.push_back(sampledRecord(1.250, 1.240, 1.260));
    newSnap.jobs.push_back(sampledRecord(1.253, 1.243, 1.263));

    // The point estimates moved by 3e-3 — but the 95% intervals
    // overlap, so a re-sampled sweep stays quiet...
    check::SnapshotDiff diff =
        check::diffSnapshots(oldSnap, newSnap);
    EXPECT_TRUE(diff.empty());
    EXPECT_EQ(diff.intervalSuppressed, 1u);

    // ...unless interval handling is turned off...
    check::SnapshotDiffOptions noCi;
    noCi.useIntervals = false;
    EXPECT_EQ(check::diffSnapshots(oldSnap, newSnap, noCi)
                  .deltas.size(),
              1u);

    // ...and fires when the intervals are disjoint.
    check::Snapshot farSnap;
    farSnap.jobs.push_back(sampledRecord(1.300, 1.290, 1.310));
    diff = check::diffSnapshots(oldSnap, farSnap);
    ASSERT_EQ(diff.deltas.size(), 1u);
    EXPECT_EQ(diff.deltas[0].metric, "ipc");
    // The interval bound columns themselves are never standalone
    // deltas.
    for (const auto &d : diff.deltas)
        EXPECT_EQ(d.metric.find("_ci_"), std::string::npos);
}

TEST(Snapshot, SinkFreezesARealSweepDeterministically)
{
    sample::install();
    std::string pathA = testPath("sweep_a.snap");
    std::string pathB = testPath("sweep_b.snap");
    runner::SweepSpec spec = runner::SweepSpec::parseGrid(
        "workload=micro.affine,micro.periodic;predictor=stride,gdiff");
    spec.defaultInstructions = 20'000;
    spec.warmup = 2'000;

    auto runInto = [&spec](const std::string &path,
                           unsigned threads) {
        runner::SweepRunner sweep(spec);
        check::SnapshotSink sink(path, "test", "sweep");
        sweep.addSink(sink);
        runner::SweepOptions opt;
        opt.threads = threads;
        sweep.run(opt);
        ASSERT_TRUE(sink.writeResult().ok())
            << sink.writeResult().message;
    };
    runInto(pathA, 1);
    runInto(pathB, 4);

    check::Snapshot a, b;
    ASSERT_TRUE(check::readSnapshot(pathA, a).ok());
    ASSERT_TRUE(check::readSnapshot(pathB, b).ok());
    EXPECT_EQ(a.jobs.size(), 4u);
    // Thread count must not change the frozen surface...
    EXPECT_EQ(a.digest(), b.digest());
    EXPECT_TRUE(check::diffSnapshots(a, b).empty());

    // ...and the files themselves are byte-identical.
    std::ifstream fa(pathA), fb(pathB);
    std::string ta((std::istreambuf_iterator<char>(fa)),
                   std::istreambuf_iterator<char>());
    std::string tb((std::istreambuf_iterator<char>(fb)),
                   std::istreambuf_iterator<char>());
    EXPECT_EQ(ta, tb);
}

} // namespace
} // namespace gdiff
