/**
 * @file
 * Profile-driver tests: the predict-then-update protocol, warmup
 * exclusion, confidence-gated statistics, and the load-address runner
 * with its D-cache miss classification.
 */

#include <gtest/gtest.h>

#include "core/gdiff.hh"
#include "isa/program_builder.hh"
#include "predictors/stride.hh"
#include "sim/profile.hh"
#include "workload/executor.hh"

namespace gdiff {
namespace sim {
namespace {

using namespace isa;
using namespace isa::reg;

/** A loop whose single producer counts 0, 7, 14, ... */
isa::Program
countingLoop()
{
    ProgramBuilder b("count");
    Label top = b.newLabel();
    b.bind(top);
    b.addi(t0, t0, 7);
    b.jump(top);
    return b.build();
}

TEST(ValueProfile, PerfectStrideScoresNearOne)
{
    workload::Executor exec(countingLoop());
    predictors::StridePredictor stride(0);
    ProfileConfig cfg;
    cfg.maxInstructions = 10'000;
    cfg.warmupInstructions = 100;
    ValueProfileRunner runner(cfg);
    runner.addPredictor(stride);
    runner.run(exec);
    const ProfileSeries &s = runner.results()[0];
    EXPECT_GT(s.accuracyAll.value(), 0.999);
    EXPECT_GT(s.coverage.value(), 0.99);
    EXPECT_GT(s.accuracyGated.value(), 0.999);
}

TEST(ValueProfile, WarmupExcludedFromStats)
{
    workload::Executor exec(countingLoop());
    predictors::StridePredictor stride(0);
    ProfileConfig cfg;
    cfg.maxInstructions = 1'000;
    cfg.warmupInstructions = 500;
    ValueProfileRunner runner(cfg);
    runner.addPredictor(stride);
    runner.run(exec);
    // Only measured instructions appear in the denominators; the loop
    // is half producers (addi) and half jumps.
    EXPECT_LE(runner.results()[0].accuracyAll.total(), 501u);
    EXPECT_GE(runner.results()[0].accuracyAll.total(), 499u);
    EXPECT_EQ(runner.measuredRecords(), 1'000u);
}

/** Ends after a fixed number of counting-loop records. */
class FiniteSource : public workload::TraceSource
{
  public:
    explicit FiniteSource(uint64_t records) : remaining(records) {}

    bool
    fill(workload::TraceChunk &chunk) override
    {
        chunk.clear();
        while (!chunk.full() && remaining > 0) {
            workload::TraceRecord r;
            r.seq = seq++;
            r.pc = 0x1000;
            r.nextPc = 0x1000;
            r.value = static_cast<int64_t>(7 * r.seq);
            chunk.push(r);
            --remaining;
        }
        return !chunk.empty();
    }

  private:
    uint64_t remaining;
    uint64_t seq = 0;
};

TEST(ValueProfile, MeasuredRecordsShrinksOnShortStream)
{
    // The stream ends 300 records into the measured phase: the
    // sampled simulator weights this window by 300, not by the
    // requested 1000.
    predictors::StridePredictor stride(0);
    ProfileConfig cfg;
    cfg.maxInstructions = 1'000;
    cfg.warmupInstructions = 500;
    ValueProfileRunner runner(cfg);
    runner.addPredictor(stride);
    FiniteSource src(800);
    runner.run(src);
    EXPECT_EQ(runner.measuredRecords(), 300u);
}

TEST(ValueProfile, MeasuredRecordsZeroWhenStreamEndsInWarmup)
{
    predictors::StridePredictor stride(0);
    ProfileConfig cfg;
    cfg.maxInstructions = 1'000;
    cfg.warmupInstructions = 500;
    ValueProfileRunner runner(cfg);
    runner.addPredictor(stride);
    FiniteSource src(400);
    runner.run(src);
    EXPECT_EQ(runner.measuredRecords(), 0u);
}

TEST(ValueProfile, MultiplePredictorsShareOneStream)
{
    workload::Executor exec(countingLoop());
    predictors::StridePredictor s1(0);
    core::GDiffConfig gcfg;
    gcfg.order = 8;
    gcfg.tableEntries = 0;
    core::GDiffPredictor s2(gcfg);
    ProfileConfig cfg;
    cfg.maxInstructions = 5'000;
    cfg.warmupInstructions = 100;
    ValueProfileRunner runner(cfg);
    runner.addPredictor(s1);
    runner.addPredictor(s2);
    runner.run(exec);
    ASSERT_EQ(runner.results().size(), 2u);
    EXPECT_EQ(runner.results()[0].accuracyAll.total(),
              runner.results()[1].accuracyAll.total());
    // The self-strided producer is its own global correlate (the only
    // producer in the loop), so gdiff matches the stride predictor.
    EXPECT_GT(runner.results()[1].accuracyAll.value(), 0.99);
}

/** Strided load walk for the address runner. */
isa::Program
loadWalk()
{
    ProgramBuilder b("walk");
    Label top = b.newLabel();
    b.bind(top);
    b.load(t1, s1, 0);
    b.addi(s1, s1, 64);   // one new cache line per load
    b.blt(s1, a2, top);
    b.addi(s1, a1, 0);
    b.jump(top);
    return b.build();
}

TEST(AddressProfile, StridedAddressesPredictable)
{
    workload::Executor exec(loadWalk());
    exec.setReg(s1, 0x10000000);
    exec.setReg(a1, 0x10000000);
    exec.setReg(a2, 0x10000000 + (1 << 21)); // 2 MiB: always missing

    predictors::StridePredictor ls(0);
    predictors::MarkovPredictor mk_all(4096, 4);
    predictors::MarkovPredictor mk_miss(4096, 4);
    ProfileConfig cfg;
    cfg.maxInstructions = 40'000;
    cfg.warmupInstructions = 4'000;
    AddressProfileRunner runner(cfg);
    runner.addPredictor(ls);
    runner.setMarkov(mk_all, mk_miss);
    runner.run(exec);

    const AddressSeries &s = runner.results()[0];
    EXPECT_GT(s.coverageAll.value(), 0.95);
    EXPECT_GT(s.accuracyAll.value(), 0.99);
    // 2 MiB streamed through a 64 KiB cache at line pitch: every load
    // misses, so the missing-load stats mirror the overall ones.
    EXPECT_GT(runner.dcacheMissRate(), 0.9);
    EXPECT_GT(s.coverageMiss.value(), 0.9);

    // Markov saw each address exactly once per lap; successors are
    // deterministic, so tag hits are accurate.
    const AddressSeries &m = runner.results().back();
    EXPECT_EQ(m.name, "markov");
    if (m.accuracyAll.total() > 0) {
        EXPECT_GT(m.accuracyAll.value(), 0.5);
    }
}

TEST(AddressProfile, HitHeavyWalkHasFewMisses)
{
    workload::Executor exec(loadWalk());
    exec.setReg(s1, 0x10000000);
    exec.setReg(a1, 0x10000000);
    exec.setReg(a2, 0x10000000 + 4096); // 4 KiB: fits easily

    predictors::StridePredictor ls(0);
    ProfileConfig cfg;
    cfg.maxInstructions = 20'000;
    cfg.warmupInstructions = 2'000;
    AddressProfileRunner runner(cfg);
    runner.addPredictor(ls);
    runner.run(exec);
    EXPECT_LT(runner.dcacheMissRate(), 0.05);
    EXPECT_EQ(runner.results()[0].coverageMiss.total(), 0u);
}

} // namespace
} // namespace sim
} // namespace gdiff
