/**
 * @file
 * Trace format v3 + persistent disk-cache battery.
 *
 * The v3 promise is "bit-identical replay, whatever happens": this
 * file polices it from four directions —
 *
 *  - round-trip property grid: kernel x seed x record-count
 *    (including empty, single-record, and non-chunk-multiple
 *    lengths) through both formats and both reader APIs;
 *  - corruption fuzz: seeded byte flips and truncations at every
 *    region of a v3 file (header, block directory, varint payload,
 *    footer) must yield clean typed errors — never a crash, an OOM,
 *    or a silently wrong stream (run under ASan/UBSan in CI);
 *  - persistent disk cache: corrupt entries are quarantined and
 *    regenerated; eviction honours the byte cap; a *different
 *    process* (fork) can populate the cache and this one replays it
 *    bit-identically, including under concurrent writers racing on
 *    the same entry;
 *  - equivalence: v2 and v3 replays drive identical predictor
 *    results, and sweeps through the disk tier are bit-identical to
 *    uncached runs at 1 and 4 threads.
 */

#include <gtest/gtest.h>

#include <cstdint>
#include <cstdio>
#include <cstring>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include <dirent.h>
#include <sys/stat.h>
#include <sys/wait.h>
#include <unistd.h>

#include "core/gdiff.hh"
#include "runner/runner.hh"
#include "runner/sinks.hh"
#include "sim/profile.hh"
#include "util/varint.hh"
#include "workload/trace_cache.hh"
#include "workload/trace_disk_cache.hh"
#include "workload/trace_io.hh"
#include "workload/workload.hh"

namespace gdiff {
namespace workload {
namespace {

// ------------------------------------------------------ helpers

std::string
tempRoot(const char *tag)
{
    return std::string(::testing::TempDir()) + "/gdiff_v3_" + tag +
           "_" + std::to_string(::getpid());
}

/** rm -rf for the small flat/1-deep trees these tests create. */
void
removeTree(const std::string &root)
{
    DIR *d = ::opendir(root.c_str());
    if (d) {
        while (struct dirent *e = ::readdir(d)) {
            std::string name = e->d_name;
            if (name == "." || name == "..")
                continue;
            std::string path = root + "/" + name;
            struct stat st;
            if (::lstat(path.c_str(), &st) == 0 && S_ISDIR(st.st_mode))
                removeTree(path);
            else
                ::unlink(path.c_str());
        }
        ::closedir(d);
    }
    ::rmdir(root.c_str());
}

/** Materialize @p kernel and flatten its first records to a vector. */
std::vector<TraceRecord>
generateRecords(const std::string &kernel, uint64_t seed, uint64_t n)
{
    auto trace = MaterializedTrace::generate(kernel, seed, n);
    std::vector<TraceRecord> out;
    out.reserve(trace->records());
    for (const auto &chunk : trace->chunks())
        for (uint32_t i = 0; i < chunk->size; ++i)
            out.push_back(chunk->record(i));
    return out;
}

void
writeRecords(const std::string &path,
             const std::vector<TraceRecord> &records, uint32_t version)
{
    TraceWriter writer(path, version);
    for (const auto &r : records)
        writer.append(r);
    writer.close();
}

std::vector<uint8_t>
slurp(const std::string &path)
{
    std::FILE *f = std::fopen(path.c_str(), "rb");
    EXPECT_NE(f, nullptr) << path;
    std::vector<uint8_t> bytes;
    if (f) {
        std::fseek(f, 0, SEEK_END);
        bytes.resize(static_cast<size_t>(std::ftell(f)));
        std::fseek(f, 0, SEEK_SET);
        EXPECT_EQ(std::fread(bytes.data(), 1, bytes.size(), f),
                  bytes.size());
        std::fclose(f);
    }
    return bytes;
}

/**
 * Decode an in-memory trace image to the end.
 * @return the terminal status; decoded records in @p out (valid only
 * when the stream ended cleanly).
 */
TraceIoResult
decodeImage(const std::vector<uint8_t> &image,
            std::vector<TraceRecord> *out = nullptr)
{
    TraceBufferReader reader;
    TraceIoResult res = reader.open(image.data(), image.size());
    if (res.failed())
        return res;
    auto chunk = std::make_unique<TraceChunk>();
    for (;;) {
        res = reader.read(*chunk);
        if (!res.ok())
            return res;
        if (out)
            for (uint32_t i = 0; i < chunk->size; ++i)
                out->push_back(chunk->record(i));
    }
}

/** Same, streaming from a file through TraceFileReader. */
TraceIoResult
decodeFile(const std::string &path,
           std::vector<TraceRecord> *out = nullptr,
           uint32_t maxVersion = traceVersionMax)
{
    TraceFileReader reader;
    TraceIoResult res = reader.open(path, maxVersion);
    if (res.failed())
        return res;
    auto chunk = std::make_unique<TraceChunk>();
    for (;;) {
        res = reader.read(*chunk);
        if (!res.ok())
            return res;
        if (out)
            for (uint32_t i = 0; i < chunk->size; ++i)
                out->push_back(chunk->record(i));
    }
}

void
expectSameRecords(const std::vector<TraceRecord> &got,
                  const std::vector<TraceRecord> &want,
                  const std::string &what)
{
    ASSERT_EQ(got.size(), want.size()) << what;
    for (size_t i = 0; i < want.size(); ++i) {
        const TraceRecord &g = got[i], &w = want[i];
        bool same = g.seq == w.seq && g.pc == w.pc &&
                    g.nextPc == w.nextPc && g.value == w.value &&
                    g.effAddr == w.effAddr && g.taken == w.taken &&
                    g.inst.op == w.inst.op && g.inst.rd == w.inst.rd &&
                    g.inst.rs1 == w.inst.rs1 &&
                    g.inst.rs2 == w.inst.rs2 &&
                    g.inst.imm == w.inst.imm &&
                    g.inst.target == w.inst.target;
        ASSERT_TRUE(same) << what << ": record " << i << " differs";
    }
}

// ------------------------------------------- round-trip property grid

TEST(TraceV3RoundTrip, KernelSeedLengthGrid)
{
    // Record counts probe every block-formation edge: empty file,
    // single record, one-short/exact/one-past a chunk boundary, and
    // a multi-block stream with a partial tail.
    const uint64_t counts[] = {0, 1, 4095, 4096, 4097, 10000};
    const char *kernels[] = {"micro.stride", "micro.periodic",
                             "micro.affine", "micro.random"};

    std::string path = tempRoot("grid") + ".gdtr";
    for (const char *kernel : kernels) {
        for (uint64_t seed : {1ull, 7ull}) {
            auto base = generateRecords(kernel, seed, 10000);
            ASSERT_EQ(base.size(), 10000u);
            for (uint64_t count : counts) {
                std::vector<TraceRecord> want(base.begin(),
                                              base.begin() + count);
                std::string what = std::string(kernel) + " seed " +
                                   std::to_string(seed) + " n " +
                                   std::to_string(count);
                for (uint32_t ver :
                     {traceVersionV2, traceVersionV3}) {
                    writeRecords(path, want, ver);
                    std::vector<TraceRecord> got;
                    TraceIoResult res = decodeFile(path, &got);
                    EXPECT_TRUE(res.end())
                        << what << " v" << ver << ": " << res.message;
                    expectSameRecords(
                        got, want,
                        what + " v" + std::to_string(ver));
                }
            }
        }
    }
    std::remove(path.c_str());
}

TEST(TraceV3RoundTrip, ChunkAndRecordAppendProduceIdenticalBytes)
{
    // The two writer entry points must form identical blocks (and
    // therefore identical digests): per-record appends batch into
    // the same full-chunks-plus-tail structure a chunked source has.
    auto trace = MaterializedTrace::generate("micro.periodic", 3, 9000);
    std::string a = tempRoot("bychunk") + ".gdtr";
    std::string b = tempRoot("byrecord") + ".gdtr";
    {
        TraceWriter writer(a);
        for (const auto &chunk : trace->chunks())
            writer.append(*chunk);
        writer.close();
    }
    {
        TraceWriter writer(b);
        for (const auto &chunk : trace->chunks())
            for (uint32_t i = 0; i < chunk->size; ++i)
                writer.append(chunk->record(i));
        writer.close();
    }
    EXPECT_EQ(slurp(a), slurp(b));
    std::remove(a.c_str());
    std::remove(b.c_str());
}

TEST(TraceV3RoundTrip, BufferAndFileReadersAgree)
{
    auto records = generateRecords("micro.affine", 5, 6000);
    std::string path = tempRoot("readers") + ".gdtr";
    writeRecords(path, records, traceVersionV3);

    std::vector<TraceRecord> viaFile, viaBuffer;
    EXPECT_TRUE(decodeFile(path, &viaFile).end());
    std::vector<uint8_t> image = slurp(path);
    EXPECT_TRUE(decodeImage(image, &viaBuffer).end());
    expectSameRecords(viaFile, records, "file reader");
    expectSameRecords(viaBuffer, records, "buffer reader");
    std::remove(path.c_str());
}

// ------------------------------------------------- corruption fuzz

/**
 * Flip one byte and decode to the end. The contract: either a clean
 * typed error, or — if a flip ever slipped past every digest — a
 * stream still identical to the original. Anything else (crash,
 * hang, silently different records) is a reader bug.
 */
void
expectFlipDetected(std::vector<uint8_t> image, size_t offset,
                   uint8_t mask,
                   const std::vector<TraceRecord> &original)
{
    image[offset] ^= mask;
    std::vector<TraceRecord> got;
    TraceIoResult res = decodeImage(image, &got);
    if (res.end())
        expectSameRecords(got, original,
                          "flip at " + std::to_string(offset));
    else
        EXPECT_TRUE(res.failed());
}

TEST(TraceV3Corruption, ByteFlipsYieldTypedErrors)
{
    // micro.affine mixes compressible and dense columns, so the file
    // exercises raw, delta, RLE, and transposed codecs at once.
    auto original = generateRecords("micro.affine", 2, 10000);
    std::string path = tempRoot("flips") + ".gdtr";
    writeRecords(path, original, traceVersionV3);
    std::vector<uint8_t> image = slurp(path);
    std::remove(path.c_str());
    ASSERT_GT(image.size(), 256u);

    // Deterministic LCG picks the flip mask so reruns are identical.
    uint64_t rng = 0x9e3779b97f4a7c15ull;
    auto nextMask = [&rng]() {
        rng = rng * 6364136223846793005ull + 1442695040888963407ull;
        uint8_t m = static_cast<uint8_t>(rng >> 33);
        return m ? m : uint8_t(1);
    };

    // Dense coverage of the header and the first block's directory
    // entry (record count, payload length, stored digest)...
    for (size_t off = 0; off < 64; ++off)
        expectFlipDetected(image, off, nextMask(), original);
    // ...strided coverage of the varint payloads and later block
    // directories...
    for (size_t off = 64; off < image.size(); off += 7)
        expectFlipDetected(image, off, nextMask(), original);
    // ...and dense coverage of the footer digest.
    for (size_t off = image.size() - 32; off < image.size(); ++off)
        expectFlipDetected(image, off, nextMask(), original);
}

TEST(TraceV3Corruption, FileReaderSurvivesFlipsToo)
{
    auto original = generateRecords("micro.periodic", 2, 6000);
    std::string path = tempRoot("fileflips") + ".gdtr";
    writeRecords(path, original, traceVersionV3);
    std::vector<uint8_t> image = slurp(path);

    for (size_t off = 0; off < image.size(); off += 97) {
        std::vector<uint8_t> bad = image;
        bad[off] ^= 0x40;
        std::FILE *f = std::fopen(path.c_str(), "wb");
        ASSERT_NE(f, nullptr);
        ASSERT_EQ(std::fwrite(bad.data(), 1, bad.size(), f),
                  bad.size());
        std::fclose(f);

        std::vector<TraceRecord> got;
        TraceIoResult res = decodeFile(path, &got);
        if (res.end())
            expectSameRecords(got, original,
                              "file flip at " + std::to_string(off));
        else
            EXPECT_TRUE(res.failed());
    }
    std::remove(path.c_str());
}

TEST(TraceV3Corruption, TruncationsYieldTypedErrors)
{
    auto original = generateRecords("micro.affine", 4, 8000);
    std::string path = tempRoot("trunc") + ".gdtr";
    writeRecords(path, original, traceVersionV3);
    std::vector<uint8_t> image = slurp(path);
    std::remove(path.c_str());

    auto check = [&](size_t len) {
        std::vector<uint8_t> cut(image.begin(), image.begin() + len);
        std::vector<TraceRecord> got;
        TraceIoResult res = decodeImage(cut, &got);
        EXPECT_TRUE(res.failed())
            << "truncation to " << len << " bytes read cleanly";
    };
    // Every prefix of the header and first block directory, then a
    // stride through the payloads, then every cut near the footer.
    for (size_t len = 0; len < 80 && len < image.size(); ++len)
        check(len);
    for (size_t len = 80; len + 80 < image.size(); len += 11)
        check(len);
    for (size_t len = image.size() - 80; len < image.size(); ++len)
        check(len);
}

TEST(TraceV3Corruption, HostileVarintsAreRejected)
{
    // Overlong encoding: ten continuation bytes never terminate a
    // valid 64-bit varint.
    const uint8_t overlong[10] = {0xff, 0xff, 0xff, 0xff, 0xff,
                                  0xff, 0xff, 0xff, 0xff, 0xff};
    uint64_t v = 0;
    EXPECT_EQ(codec::getVarint(overlong, overlong + 10, &v), 0u);

    // Truncated varint: continuation bit set at end of input.
    const uint8_t cut[1] = {0x80};
    EXPECT_EQ(codec::getVarint(cut, cut + 1, &v), 0u);

    // A run length claiming more elements than the column holds.
    std::vector<uint8_t> enc;
    codec::putVarint(enc, codec::zigzagEncode(1)); // delta 1
    codec::putVarint(enc, 1000);                   // run 1000
    uint64_t out[8];
    EXPECT_FALSE(codec::decodeDeltaRle(enc.data(), enc.size(), out, 8));

    // Trailing bytes after the declared element count.
    std::vector<uint8_t> exact;
    codec::putVarint(exact, codec::zigzagEncode(5));
    codec::putVarint(exact, 4);
    exact.push_back(0x00);
    EXPECT_FALSE(
        codec::decodeDeltaRle(exact.data(), exact.size(), out, 4));
}

// ------------------------------------------------ persistent tier

TEST(DiskTraceCache, StoreThenLoadRoundTrips)
{
    std::string root = tempRoot("storeload");
    DiskTraceCache::Config cfg;
    cfg.root = root;
    DiskTraceCache disk(cfg);

    auto trace = MaterializedTrace::generate("micro.stride", 1, 5000);
    EXPECT_EQ(disk.load("micro.stride", 1, 5000), nullptr);
    disk.store("micro.stride", 1, 5000, *trace);
    auto loaded = disk.load("micro.stride", 1, 5000);
    ASSERT_NE(loaded, nullptr);
    EXPECT_EQ(loaded->records(), trace->records());
    ASSERT_EQ(loaded->chunks().size(), trace->chunks().size());
    for (size_t c = 0; c < trace->chunks().size(); ++c) {
        const TraceChunk &a = *trace->chunks()[c];
        const TraceChunk &b = *loaded->chunks()[c];
        ASSERT_EQ(a.size, b.size);
        for (uint32_t i = 0; i < a.size; ++i) {
            EXPECT_EQ(a.value[i], b.value[i]);
            EXPECT_EQ(a.pc[i], b.pc[i]);
            EXPECT_EQ(a.flags[i], b.flags[i]);
        }
    }
    DiskTraceCache::Stats s = disk.snapshot();
    EXPECT_EQ(s.stores, 1u);
    EXPECT_EQ(s.hits, 1u);
    EXPECT_EQ(s.misses, 1u);
    removeTree(root);
}

TEST(DiskTraceCache, EntryNameSanitizesSeparators)
{
    EXPECT_EQ(DiskTraceCache::entryName("micro.stride", 1, 5000),
              "micro.stride-s1-r5000-v3.gdtr");
    EXPECT_EQ(DiskTraceCache::entryName("a/b c", 3, 9),
              "a_b_c-s3-r9-v3.gdtr");
}

TEST(DiskTraceCache, CorruptEntryQuarantinedAndRegenerated)
{
    std::string root = tempRoot("quarantine");
    const std::string kernel = "micro.periodic";

    {
        TraceCache cache;
        cache.setDiskRoot(root);
        auto acq = cache.acquire(kernel, 9, 7000);
        EXPECT_TRUE(acq.generated);
        EXPECT_FALSE(acq.fromDisk);
        EXPECT_EQ(cache.snapshot().diskStores, 1u);
    }

    // Flip a payload byte in the stored entry.
    std::string entry =
        root + "/" + DiskTraceCache::entryName(kernel, 9, 7000);
    std::vector<uint8_t> bytes = slurp(entry);
    ASSERT_GT(bytes.size(), 64u);
    bytes[bytes.size() / 2] ^= 0x01;
    {
        std::FILE *f = std::fopen(entry.c_str(), "wb");
        ASSERT_NE(f, nullptr);
        ASSERT_EQ(std::fwrite(bytes.data(), 1, bytes.size(), f),
                  bytes.size());
        std::fclose(f);
    }

    // A fresh cache (fresh process, logically) detects the damage,
    // quarantines the entry, regenerates, and re-persists.
    {
        TraceCache cache;
        cache.setDiskRoot(root);
        auto acq = cache.acquire(kernel, 9, 7000);
        EXPECT_TRUE(acq.generated);
        EXPECT_FALSE(acq.fromDisk);
        TraceCache::Stats s = cache.snapshot();
        EXPECT_EQ(s.diskCorruptRecoveries, 1u);
        EXPECT_EQ(s.diskStores, 1u);
    }
    struct stat st;
    EXPECT_EQ(::stat((entry + ".corrupt").c_str(), &st), 0)
        << "corrupt entry was not quarantined";

    // And the regenerated entry serves the next process from disk.
    {
        TraceCache cache;
        cache.setDiskRoot(root);
        auto acq = cache.acquire(kernel, 9, 7000);
        EXPECT_FALSE(acq.generated);
        EXPECT_TRUE(acq.fromDisk);
    }
    removeTree(root);
}

TEST(DiskTraceCache, EvictionHonoursByteCap)
{
    std::string root = tempRoot("evict");
    DiskTraceCache::Config cfg;
    cfg.root = root;
    // Smaller than any one entry: micro.stride compresses to a few
    // hundred bytes, but never under the 32 bytes of header+footer.
    cfg.maxBytes = 64;
    DiskTraceCache disk(cfg);

    auto a = MaterializedTrace::generate("micro.stride", 1, 5000);
    auto b = MaterializedTrace::generate("micro.stride", 2, 5000);
    disk.store("micro.stride", 1, 5000, *a);
    disk.store("micro.stride", 2, 5000, *b); // sweeps seed 1 out

    EXPECT_EQ(disk.load("micro.stride", 1, 5000), nullptr);
    EXPECT_NE(disk.load("micro.stride", 2, 5000), nullptr);
    DiskTraceCache::Stats s = disk.snapshot();
    EXPECT_GE(s.evictions, 1u);
    removeTree(root);
}

// -------------------------------------------------- cross-process

/** @return the child's exit code, or -1 on abnormal termination. */
int
waitForChild(pid_t pid)
{
    int status = 0;
    if (::waitpid(pid, &status, 0) != pid || !WIFEXITED(status))
        return -1;
    return WEXITSTATUS(status);
}

TEST(DiskTraceCacheCrossProcess, ChildPopulatesParentReplays)
{
    std::string root = tempRoot("xproc");
    const std::string kernel = "micro.affine";

    pid_t pid = ::fork();
    ASSERT_GE(pid, 0);
    if (pid == 0) {
        // Child: a separate process with its own (empty) memory
        // tier populates the shared disk tier.
        TraceCache cache;
        cache.setDiskRoot(root);
        auto acq = cache.acquire(kernel, 11, 8000);
        ::_exit(acq.generated && !acq.fromDisk ? 0 : 3);
    }
    ASSERT_EQ(waitForChild(pid), 0);

    TraceCache cache;
    cache.setDiskRoot(root);
    auto acq = cache.acquire(kernel, 11, 8000);
    EXPECT_FALSE(acq.generated);
    EXPECT_TRUE(acq.fromDisk);
    EXPECT_EQ(cache.snapshot().diskHits, 1u);

    // Bit-identical to a from-scratch generation.
    auto want = generateRecords(kernel, 11, 8000);
    std::vector<TraceRecord> got;
    TraceRecord r;
    while (acq.source->next(r))
        got.push_back(r);
    expectSameRecords(got, want, "cross-process replay");
    removeTree(root);
}

TEST(DiskTraceCacheCrossProcess, ConcurrentWritersRaceSafely)
{
    std::string root = tempRoot("race");
    const std::string kernel = "micro.periodic";

    // Four processes generate and store the same entry at once; the
    // tmp-file + atomic-rename protocol means every interleaving
    // leaves one valid entry (all writers produce identical bytes).
    std::vector<pid_t> children;
    for (int i = 0; i < 4; ++i) {
        pid_t pid = ::fork();
        ASSERT_GE(pid, 0);
        if (pid == 0) {
            TraceCache cache;
            cache.setDiskRoot(root);
            auto acq = cache.acquire(kernel, 21, 6000);
            ::_exit(acq.source ? 0 : 3);
        }
        children.push_back(pid);
    }
    for (pid_t pid : children)
        EXPECT_EQ(waitForChild(pid), 0);

    // No temp litter; the entry is valid and replays identically.
    DIR *d = ::opendir(root.c_str());
    ASSERT_NE(d, nullptr);
    while (struct dirent *e = ::readdir(d)) {
        std::string name = e->d_name;
        EXPECT_EQ(name.find(".tmp."), std::string::npos)
            << "leftover temp file: " << name;
    }
    ::closedir(d);

    TraceCache cache;
    cache.setDiskRoot(root);
    auto acq = cache.acquire(kernel, 21, 6000);
    EXPECT_TRUE(acq.fromDisk);
    auto want = generateRecords(kernel, 21, 6000);
    std::vector<TraceRecord> got;
    TraceRecord r;
    while (acq.source->next(r))
        got.push_back(r);
    expectSameRecords(got, want, "post-race replay");
    removeTree(root);
}

// -------------------------------------------------- equivalence

TEST(TraceV3Equivalence, V2AndV3ReplaysDriveIdenticalResults)
{
    auto records = generateRecords("mcf", 1, 60000);
    std::string v2 = tempRoot("eqv2") + ".gdtr";
    std::string v3 = tempRoot("eqv3") + ".gdtr";
    writeRecords(v2, records, traceVersionV2);
    writeRecords(v3, records, traceVersionV3);

    auto run = [](const std::string &path) {
        TraceFileSource src(path);
        core::GDiffConfig cfg;
        cfg.order = 8;
        cfg.tableEntries = 0;
        core::GDiffPredictor gd(cfg);
        sim::ProfileConfig pcfg;
        pcfg.maxInstructions = 50'000;
        pcfg.warmupInstructions = 5'000;
        sim::ValueProfileRunner runner(pcfg);
        runner.addPredictor(gd);
        runner.run(src);
        return runner.results()[0].accuracyAll.value();
    };
    EXPECT_DOUBLE_EQ(run(v2), run(v3));
    std::remove(v2.c_str());
    std::remove(v3.c_str());
}

/** Run a small sweep and return {job key -> metrics}. */
std::map<std::string, std::vector<std::pair<std::string, double>>>
runSweep(unsigned threads, const std::string &cacheDir)
{
    runner::SweepSpec spec;
    spec.mode = runner::JobMode::Profile;
    spec.workloads = {"micro.stride", "micro.periodic"};
    spec.predictors = {"stride", "gdiff"};
    spec.orders = {4, 8};
    spec.seeds = {1, 2};
    spec.defaultInstructions = 12'000;
    spec.warmup = 1'000;

    runner::SweepRunner sweep(spec);
    runner::CollectingSink collect;
    sweep.addSink(collect);
    runner::SweepOptions opt;
    opt.threads = threads;
    opt.traceCacheDir = cacheDir;
    sweep.run(opt);
    std::map<std::string,
             std::vector<std::pair<std::string, double>>> out;
    for (const auto &r : collect.records())
        out[r.spec.key()] = r.result.metrics;
    return out;
}

TEST(TraceV3Equivalence, DiskCachedSweepBitIdenticalToUncached)
{
    std::string root = tempRoot("sweep");
    TraceCache::global().clear();
    auto uncached = runSweep(1, "");
    ASSERT_EQ(uncached.size(), 16u);

    for (unsigned threads : {1u, 4u}) {
        // Cold pass (populates the disk tier) and warm pass (replays
        // from it) must both match the uncached metrics exactly.
        removeTree(root);
        TraceCache::global().clear();
        auto cold = runSweep(threads, root);
        EXPECT_EQ(cold, uncached) << "cold, threads=" << threads;

        TraceCache::global().clear();
        auto warm = runSweep(threads, root);
        EXPECT_EQ(warm, uncached) << "warm, threads=" << threads;
        TraceCache::Stats s = TraceCache::global().snapshot();
        EXPECT_EQ(s.generations, 0u)
            << "warm sweep regenerated a trace (threads=" << threads
            << ")";
        EXPECT_GE(s.diskHits, 4u);
    }
    TraceCache::global().setDiskRoot("");
    TraceCache::global().clear();
    removeTree(root);
}

} // namespace
} // namespace workload
} // namespace gdiff
