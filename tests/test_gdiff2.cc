/**
 * @file
 * Two-term gdiff tests: the Eq.-1 extension must capture
 * difference-of-two-values patterns (paper Fig. 3's "sub r, ra, rd")
 * that neither local predictors nor single-term gdiff can see, while
 * remaining a strict superset of single-term gdiff.
 */

#include <gtest/gtest.h>

#include "core/gdiff.hh"
#include "core/gdiff2.hh"

namespace gdiff {
namespace core {
namespace {

constexpr uint64_t pcA = 0x400000;
constexpr uint64_t pcB = 0x400010;
constexpr uint64_t pcC = 0x400020;

GDiff2Config
unlimited(unsigned order = 8)
{
    GDiff2Config c;
    c.order = order;
    c.tableEntries = 0;
    return c;
}

/** Noisy-but-related streams: a and b are individually random, but
 * c == a + b + 7 every iteration. */
template <typename P>
unsigned
pairAddScore(P &p, int iterations)
{
    unsigned correct = 0;
    uint64_t x = 99;
    for (int i = 0; i < iterations; ++i) {
        x = x * 6364136223846793005ull + 1442695040888963407ull;
        int64_t a = static_cast<int64_t>(x >> 16);
        x = x * 6364136223846793005ull + 1442695040888963407ull;
        int64_t b = static_cast<int64_t>(x >> 16);
        p.update(pcA, a);
        p.update(pcB, b);
        int64_t guess;
        if (p.predict(pcC, guess) && guess == a + b + 7)
            ++correct;
        p.update(pcC, a + b + 7);
    }
    return correct;
}

TEST(GDiff2, CapturesSumOfTwoRecentValues)
{
    GDiff2Predictor p2(unlimited());
    EXPECT_GE(pairAddScore(p2, 50), 45u);

    GDiffConfig c1;
    c1.order = 8;
    c1.tableEntries = 0;
    GDiffPredictor p1(c1);
    EXPECT_LE(pairAddScore(p1, 50), 5u);
}

TEST(GDiff2, CapturesDifferenceOfTwoRecentValues)
{
    // c == a - b - 3: the Fig. 3 "sub" pattern.
    GDiff2Predictor p(unlimited());
    unsigned correct = 0;
    uint64_t x = 7;
    for (int i = 0; i < 50; ++i) {
        x = x * 6364136223846793005ull + 1;
        int64_t a = static_cast<int64_t>(x >> 20);
        x = x * 6364136223846793005ull + 1;
        int64_t b = static_cast<int64_t>(x >> 20);
        p.update(pcA, a);
        p.update(pcB, b);
        int64_t guess;
        if (p.predict(pcC, guess) && guess == a - b - 3)
            ++correct;
        p.update(pcC, a - b - 3);
    }
    EXPECT_GE(correct, 45u);
    EXPECT_GT(p.pairSelectionRate(), 0.5);
}

TEST(GDiff2, SubsumesSingleTermGDiff)
{
    // The paper's Fig. 6 example must still work, selected as a
    // single-term form.
    GDiff2Predictor p(unlimited());
    int64_t guess;
    for (int i = 0; i < 8; ++i) {
        p.update(pcA, 1000 + 37 * i * i);
        if (i >= 2) {
            ASSERT_TRUE(p.predict(pcB, guess));
            EXPECT_EQ(guess, 1000 + 37 * i * i + 4);
        }
        p.update(pcB, 1000 + 37 * i * i + 4);
    }
    EXPECT_DOUBLE_EQ(p.pairSelectionRate(), 0.0);
}

TEST(GDiff2, SinglePreferredOverAccidentalPairs)
{
    // Constant-difference single-term stream where many pair
    // residuals also repeat: the cheaper single form must win.
    GDiff2Predictor p(unlimited(4));
    for (int i = 0; i < 10; ++i) {
        p.update(pcA, 10 * i);
        p.update(pcB, 10 * i + 3);
    }
    int64_t guess;
    p.update(pcA, 200);
    ASSERT_TRUE(p.predict(pcB, guess));
    EXPECT_EQ(guess, 203);
}

TEST(GDiff2, NoPredictionBeforeLearning)
{
    GDiff2Predictor p(unlimited());
    int64_t guess;
    EXPECT_FALSE(p.predict(pcA, guess));
    p.update(pcA, 5);
    EXPECT_FALSE(p.predict(pcA, guess));
}

TEST(GDiff2, ShortWindowSuppressesPrediction)
{
    GDiff2Predictor p(unlimited(8));
    // Two trainings where only the (1,3) sum relation repeats: every
    // single residual changes, so the selected form must be PairAdd.
    ValueWindow w1;
    w1.count = 4;
    w1.values[0] = 100;
    w1.values[1] = 200;
    w1.values[2] = 300;
    w1.values[3] = 400;
    p.trainWithWindow(pcA, w1, 700); // w[1] + w[3] + 100

    ValueWindow w2;
    w2.count = 4;
    w2.values[0] = 151;
    w2.values[1] = 310;
    w2.values[2] = 333;
    w2.values[3] = 420;
    p.trainWithWindow(pcA, w2, 830); // w[1] + w[3] + 100 again

    int64_t guess;
    ASSERT_TRUE(p.predictWithWindow(pcA, w2, guess));
    EXPECT_EQ(guess, 830);

    // A window shorter than the learned pair suppresses prediction.
    ValueWindow short_w;
    short_w.count = 1;
    short_w.values[0] = 100;
    EXPECT_FALSE(p.predictWithWindow(pcA, short_w, guess));
}

TEST(GDiff2Death, OrderBounds)
{
    GDiff2Config c;
    c.order = 1;
    EXPECT_DEATH(GDiff2Predictor p(c), "order");
    c.order = 32;
    EXPECT_DEATH(GDiff2Predictor p2(c), "order");
}

} // namespace
} // namespace core
} // namespace gdiff
