/**
 * @file
 * Assembler tests: text round-trips through the disassembler,
 * directives build full workloads, labels resolve in both directions,
 * and malformed sources die with line numbers.
 */

#include <gtest/gtest.h>

#include "workload/assembler.hh"
#include "workload/executor.hh"

namespace gdiff {
namespace workload {
namespace {

TEST(Assembler, AluAndMemoryFormats)
{
    isa::Program p = assemble(R"(
        # a small mixed program
        li   t0, 0x100
        addi t1, t0, -8
        add  t2, t0, t1
        sub  t3, t2, t0
        sd   t3, 16(t0)
        ld   t4, 16(t0)
        halt
    )");
    ASSERT_EQ(p.size(), 7u);
    EXPECT_EQ(p.at(0).toString(), "li r8, 256");
    EXPECT_EQ(p.at(1).toString(), "addi r9, r8, -8");
    EXPECT_EQ(p.at(4).toString(), "sd r11, 16(r8)");
    EXPECT_EQ(p.at(5).toString(), "ld r12, 16(r8)");
}

TEST(Assembler, ExecutesCorrectly)
{
    isa::Program p = assemble(R"(
        li   s1, 10
        li   s2, 0
    loop:
        addi s2, s2, 3
        addi s1, s1, -1
        bne  s1, zero, loop
        halt
    )");
    Executor e(p);
    TraceRecord r;
    while (e.next(r)) {
    }
    EXPECT_EQ(e.reg(isa::reg::s2), 30);
    EXPECT_EQ(e.reg(isa::reg::s1), 0);
}

TEST(Assembler, ForwardLabelsAndJumps)
{
    isa::Program p = assemble(R"(
        j skip
        li t0, 111
    skip:
        li t1, 222
        halt
    )");
    EXPECT_EQ(p.at(0).target, 2u);
    Executor e(p);
    TraceRecord r;
    while (e.next(r)) {
    }
    EXPECT_EQ(e.reg(isa::reg::t0), 0);
    EXPECT_EQ(e.reg(isa::reg::t1), 222);
}

TEST(Assembler, CallsAndReturns)
{
    isa::Program p = assemble(R"(
        jal ra, func
        li  t1, 1
        halt
    func:
        li  t2, 2
        jr  ra
    )");
    Executor e(p);
    TraceRecord r;
    while (e.next(r)) {
    }
    EXPECT_EQ(e.reg(isa::reg::t1), 1);
    EXPECT_EQ(e.reg(isa::reg::t2), 2);
}

TEST(Assembler, WorkloadDirectivesAndMarkers)
{
    Workload w = assembleWorkload(R"(
        .reg  s1 0x10000000
        .word 0x10000000 777
        .word 0x10000008 -5
    top:
        ld   t1, 0(s1)
        ld   t2, 8(s1)
        halt
    )");
    EXPECT_EQ(w.markerPc("top"), isa::textBase);
    auto exec = w.makeExecutor();
    TraceRecord r;
    while (exec->next(r)) {
    }
    EXPECT_EQ(exec->reg(isa::reg::t1), 777);
    EXPECT_EQ(exec->reg(isa::reg::t2), -5);
}

TEST(Assembler, SymbolicAndRawRegisterNamesAgree)
{
    isa::Program a = assemble("add s8, t9, v0\nhalt\n");
    isa::Program b = assemble("add r30, r25, r2\nhalt\n");
    EXPECT_EQ(a.at(0).toString(), b.at(0).toString());
    // fp is an alias for s8
    isa::Program c = assemble("add fp, t9, v0\nhalt\n");
    EXPECT_EQ(c.at(0).toString(), a.at(0).toString());
}

TEST(Assembler, HexAndNegativeImmediates)
{
    isa::Program p = assemble(R"(
        li t0, 0xff
        li t1, -0x10
        addi t2, t0, -3
        halt
    )");
    EXPECT_EQ(p.at(0).imm, 255);
    EXPECT_EQ(p.at(1).imm, -16);
    EXPECT_EQ(p.at(2).imm, -3);
}

TEST(Assembler, ShiftMnemonics)
{
    isa::Program p = assemble(R"(
        slli t1, t0, 4
        srli t2, t0, 5
        srai t3, t0, 6
        sra  t4, t0, t1
        halt
    )");
    EXPECT_EQ(p.at(0).toString(), "slli r9, r8, 4");
    EXPECT_EQ(p.at(1).toString(), "srli r10, r8, 5");
    EXPECT_EQ(p.at(2).toString(), "srai r11, r8, 6");
    EXPECT_EQ(p.at(3).toString(), "sra r12, r8, r9");
}

TEST(AssemblerDeath, ErrorsCarryLineNumbers)
{
    EXPECT_EXIT(assemble("li t0, 1\nfrobnicate t0, t1, t2\nhalt\n"),
                ::testing::ExitedWithCode(1), "line 2");
    EXPECT_EXIT(assemble("ld t0, t1, t2\nhalt\n"),
                ::testing::ExitedWithCode(1), "off\\(base\\)");
    EXPECT_EXIT(assemble("li t0, notanumber\nhalt\n"),
                ::testing::ExitedWithCode(1), "bad immediate");
    EXPECT_EXIT(assemble("add q9, t0, t1\nhalt\n"),
                ::testing::ExitedWithCode(1), "unknown register");
    EXPECT_EXIT(assemble("\n# only comments\n"),
                ::testing::ExitedWithCode(1), "no instructions");
    EXPECT_EXIT(assemble(".word 0x10 1\nhalt\n"),
                ::testing::ExitedWithCode(1), "assembleWorkload");
}

} // namespace
} // namespace workload
} // namespace gdiff
